package ring

import (
	"errors"
	"fmt"
	"strings"
)

// ErrUnknownPreset reports a preset name that is not in the table.
var ErrUnknownPreset = errors.New("ring: unknown preset")

// Preset is a named canonical plant configuration. The table returned by
// Presets is the single source of truth for plant parameters: the topology
// spec grammar, the CLIs and the tests all resolve presets here instead of
// re-deriving the Section 6.2 constants.
type Preset struct {
	// Name is the spec/CLI identifier.
	Name string
	// Note is a one-line description for help output.
	Note string
	// New builds the plant at the given bandwidth.
	New func(bandwidthBPS float64) Config
}

// Presets returns the built-in plant presets, in paper order.
func Presets() []Preset {
	return []Preset{
		{
			Name: "ieee8025",
			Note: "paper's IEEE 802.5 plant: 100 stations, 4-bit station delay, 24-bit token",
			New:  IEEE8025,
		},
		{
			Name: "fddi",
			Note: "paper's FDDI plant: 100 stations, 75-bit station delay, 88-bit token",
			New:  FDDI,
		},
	}
}

// PresetByName looks up one built-in preset. The error of an unknown name
// matches ErrUnknownPreset (errors.Is) and lists every valid name.
func PresetByName(name string) (Preset, error) {
	presets := Presets()
	names := make([]string, len(presets))
	for i, p := range presets {
		if p.Name == name {
			return p, nil
		}
		names[i] = p.Name
	}
	return Preset{}, fmt.Errorf("%w: %q (valid presets: %s)",
		ErrUnknownPreset, name, strings.Join(names, ", "))
}

// Tiny returns the hand-checkable test plant shared by the simulator timing
// tests: Θ = 4 µs (4 token bits at 1 Mbps, no propagation, no station
// latency), so a token hop between adjacent stations costs 4/n µs and every
// expected event time stays mental math.
func Tiny(stations int) Config {
	return Config{
		Stations:            stations,
		SpacingMeters:       0,
		BandwidthBPS:        1e6,
		BitDelayPerStation:  0,
		TokenBits:           4,
		PropagationFraction: PaperPropagationFraction,
	}
}
