// Package ring models the physical token-ring network substrate shared by
// both MAC protocols studied in Kamat & Zhao (ICDCS 1993): ring topology,
// signal propagation, per-station latency, and the derived token walk time
// WT and token circulation time Θ (theta).
//
// All times are in seconds and all rates in bits per second.
package ring

import (
	"errors"
	"fmt"
)

// SpeedOfLight is the vacuum speed of light in meters per second.
const SpeedOfLight = 299_792_458.0

// Errors returned by Config.Validate.
var (
	ErrNoStations       = errors.New("ring: station count must be positive")
	ErrNoBandwidth      = errors.New("ring: bandwidth must be positive")
	ErrBadSpacing       = errors.New("ring: station spacing must be non-negative")
	ErrBadPropagation   = errors.New("ring: propagation speed fraction must be in (0, 1]")
	ErrNegativeBitDelay = errors.New("ring: per-station bit delay must be non-negative")
	ErrNegativeToken    = errors.New("ring: token length must be non-negative")
)

// Config describes a token ring network. The zero value is not usable; build
// one with the protocol presets (IEEE8025, FDDI) or fill every field and call
// Validate.
type Config struct {
	// Stations is the number of nodes n on the ring. The paper's message
	// model attaches exactly one synchronous stream to each station.
	Stations int

	// SpacingMeters is the cable distance d between neighboring stations.
	SpacingMeters float64

	// BandwidthBPS is the transmission rate BW of the medium in bits/second.
	BandwidthBPS float64

	// BitDelayPerStation is the latency each station inserts into the ring,
	// expressed in bit times (4 bits for IEEE 802.5 hardware, 75 bits for
	// FDDI hardware in the paper's comparison).
	BitDelayPerStation float64

	// TokenBits is the length of the token frame in bits (24 for IEEE
	// 802.5; 88 for FDDI including preamble).
	TokenBits float64

	// PropagationFraction is the signal speed through the medium as a
	// fraction of the speed of light (0.75 in the paper).
	PropagationFraction float64
}

// Validate reports the first violated physical constraint, or nil.
func (c Config) Validate() error {
	switch {
	case c.Stations <= 0:
		return ErrNoStations
	case c.BandwidthBPS <= 0:
		return ErrNoBandwidth
	case c.SpacingMeters < 0:
		return ErrBadSpacing
	case c.PropagationFraction <= 0 || c.PropagationFraction > 1:
		return ErrBadPropagation
	case c.BitDelayPerStation < 0:
		return ErrNegativeBitDelay
	case c.TokenBits < 0:
		return ErrNegativeToken
	}
	return nil
}

// RingLengthMeters is the total cable length of the ring.
func (c Config) RingLengthMeters() float64 {
	return float64(c.Stations) * c.SpacingMeters
}

// PropagationDelay is the time for a signal to travel once around the ring.
// It is independent of bandwidth.
func (c Config) PropagationDelay() float64 {
	return c.RingLengthMeters() / (c.PropagationFraction * SpeedOfLight)
}

// RingLatency is the cumulative station (buffer) latency around the ring:
// Stations * BitDelayPerStation bit times at the configured bandwidth.
func (c Config) RingLatency() float64 {
	return float64(c.Stations) * c.BitDelayPerStation / c.BandwidthBPS
}

// WalkTime is WT, the token walk time around the ring: propagation delay
// plus ring latency. The paper defines Θ = WT + token transmission time.
func (c Config) WalkTime() float64 {
	return c.PropagationDelay() + c.RingLatency()
}

// TokenTime is the time to transmit the token at the configured bandwidth.
func (c Config) TokenTime() float64 {
	return c.TokenBits / c.BandwidthBPS
}

// Theta is Θ = WT + token transmission time, the token circulation time.
// Both schedulability analyses are parameterized by Θ.
func (c Config) Theta() float64 {
	return c.WalkTime() + c.TokenTime()
}

// LatencyBits is Q, the sum of the token length and ring latency expressed
// in bits. The paper writes Θ = τ_P + Q/BW where τ_P is the propagation
// delay; this accessor exists so tests can check that identity.
func (c Config) LatencyBits() float64 {
	return c.TokenBits + float64(c.Stations)*c.BitDelayPerStation
}

// BitTime is the duration of one bit on the medium.
func (c Config) BitTime() float64 {
	return 1 / c.BandwidthBPS
}

// TransmitTime converts a payload size in bits to medium time.
func (c Config) TransmitTime(bits float64) float64 {
	return bits / c.BandwidthBPS
}

// WithBandwidth returns a copy of the config at a different bandwidth.
// Bandwidth sweeps (Figure 1) use this to hold the physical plant constant.
func (c Config) WithBandwidth(bps float64) Config {
	c.BandwidthBPS = bps
	return c
}

// WithStations returns a copy of the config with a different station count.
func (c Config) WithStations(n int) Config {
	c.Stations = n
	return c
}

// String summarizes the configuration for logs and reports.
func (c Config) String() string {
	return fmt.Sprintf("ring{n=%d d=%.0fm bw=%.3gMbps delay=%gb token=%gb prop=%.2fc}",
		c.Stations, c.SpacingMeters, c.BandwidthBPS/1e6,
		c.BitDelayPerStation, c.TokenBits, c.PropagationFraction)
}

// Mbps converts megabits/second to bits/second.
func Mbps(m float64) float64 { return m * 1e6 }

// Paper comparison constants (Section 6.2).
const (
	// PaperStations is n = 100.
	PaperStations = 100
	// PaperSpacingMeters is d = 100 m between neighbors.
	PaperSpacingMeters = 100.0
	// PaperPropagationFraction is 75 % of the speed of light.
	PaperPropagationFraction = 0.75
	// IEEE8025BitDelay is the average per-station bit delay the paper uses
	// for the priority driven protocol.
	IEEE8025BitDelay = 4.0
	// FDDIBitDelay is the average per-station bit delay the paper uses for
	// the timed token protocol.
	FDDIBitDelay = 75.0
	// IEEE8025TokenBits is the 3-octet IEEE 802.5 token.
	IEEE8025TokenBits = 24.0
	// FDDITokenBits is the FDDI token including an 8-octet preamble.
	FDDITokenBits = 88.0
)

// IEEE8025 returns the paper's IEEE 802.5 plant at the given bandwidth.
func IEEE8025(bandwidthBPS float64) Config {
	return Config{
		Stations:            PaperStations,
		SpacingMeters:       PaperSpacingMeters,
		BandwidthBPS:        bandwidthBPS,
		BitDelayPerStation:  IEEE8025BitDelay,
		TokenBits:           IEEE8025TokenBits,
		PropagationFraction: PaperPropagationFraction,
	}
}

// FDDI returns the paper's FDDI plant at the given bandwidth.
func FDDI(bandwidthBPS float64) Config {
	return Config{
		Stations:            PaperStations,
		SpacingMeters:       PaperSpacingMeters,
		BandwidthBPS:        bandwidthBPS,
		BitDelayPerStation:  FDDIBitDelay,
		TokenBits:           FDDITokenBits,
		PropagationFraction: PaperPropagationFraction,
	}
}
