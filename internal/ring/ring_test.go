package ring

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func validConfig() Config {
	return Config{
		Stations:            100,
		SpacingMeters:       100,
		BandwidthBPS:        4e6,
		BitDelayPerStation:  4,
		TokenBits:           24,
		PropagationFraction: 0.75,
	}
}

func TestValidateAcceptsPaperPlants(t *testing.T) {
	for _, cfg := range []Config{IEEE8025(1e6), IEEE8025(1e9), FDDI(100e6), validConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", cfg, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"zero stations", func(c *Config) { c.Stations = 0 }, ErrNoStations},
		{"negative stations", func(c *Config) { c.Stations = -3 }, ErrNoStations},
		{"zero bandwidth", func(c *Config) { c.BandwidthBPS = 0 }, ErrNoBandwidth},
		{"negative bandwidth", func(c *Config) { c.BandwidthBPS = -1 }, ErrNoBandwidth},
		{"negative spacing", func(c *Config) { c.SpacingMeters = -1 }, ErrBadSpacing},
		{"zero propagation", func(c *Config) { c.PropagationFraction = 0 }, ErrBadPropagation},
		{"superluminal", func(c *Config) { c.PropagationFraction = 1.5 }, ErrBadPropagation},
		{"negative bit delay", func(c *Config) { c.BitDelayPerStation = -4 }, ErrNegativeBitDelay},
		{"negative token", func(c *Config) { c.TokenBits = -24 }, ErrNegativeToken},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, tt.want) {
				t.Errorf("Validate() = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestPropagationDelayMatchesHandComputation(t *testing.T) {
	cfg := IEEE8025(4e6)
	// 100 stations × 100 m = 10 km at 0.75c.
	want := 10_000 / (0.75 * SpeedOfLight)
	if got := cfg.PropagationDelay(); math.Abs(got-want) > 1e-12 {
		t.Errorf("PropagationDelay() = %v, want %v", got, want)
	}
}

func TestThetaIdentity(t *testing.T) {
	// Θ must equal propagation delay + Q/BW where Q is token+latency bits.
	for _, bw := range []float64{1e6, 4e6, 16e6, 100e6, 1e9} {
		for _, cfg := range []Config{IEEE8025(bw), FDDI(bw)} {
			want := cfg.PropagationDelay() + cfg.LatencyBits()/bw
			if got := cfg.Theta(); math.Abs(got-want) > 1e-15 {
				t.Errorf("%v: Theta() = %v, want %v", cfg, got, want)
			}
		}
	}
}

func TestThetaDecreasesWithBandwidth(t *testing.T) {
	prev := math.Inf(1)
	for _, bw := range []float64{1e6, 2e6, 10e6, 100e6, 1e9} {
		theta := IEEE8025(bw).Theta()
		if theta >= prev {
			t.Fatalf("Theta at %v bps = %v, not less than %v at lower bandwidth", bw, theta, prev)
		}
		prev = theta
	}
}

func TestThetaLowerBoundIsPropagation(t *testing.T) {
	// Θ → propagation delay as bandwidth → ∞, and never drops below it.
	cfg := IEEE8025(1e12)
	if cfg.Theta() < cfg.PropagationDelay() {
		t.Fatalf("Theta %v < propagation %v", cfg.Theta(), cfg.PropagationDelay())
	}
	if diff := cfg.Theta() - cfg.PropagationDelay(); diff > 1e-9 {
		t.Fatalf("Theta at 1 Tbps exceeds propagation by %v, want ~0", diff)
	}
}

func TestPaperBitDelays(t *testing.T) {
	// The FDDI plant carries much higher per-station latency, the key
	// asymmetry in the paper's comparison.
	i := IEEE8025(16e6)
	f := FDDI(16e6)
	if i.RingLatency() >= f.RingLatency() {
		t.Fatalf("802.5 ring latency %v not below FDDI %v", i.RingLatency(), f.RingLatency())
	}
	if got := i.LatencyBits(); got != 424 {
		t.Errorf("802.5 LatencyBits = %v, want 424", got)
	}
	if got := f.LatencyBits(); got != 7588 {
		t.Errorf("FDDI LatencyBits = %v, want 7588", got)
	}
}

func TestWithBandwidthPreservesPlant(t *testing.T) {
	base := FDDI(100e6)
	moved := base.WithBandwidth(1e9)
	if moved.BandwidthBPS != 1e9 {
		t.Fatalf("WithBandwidth did not set bandwidth: %v", moved.BandwidthBPS)
	}
	moved.BandwidthBPS = base.BandwidthBPS
	if moved != base {
		t.Errorf("WithBandwidth changed other fields: %+v vs %+v", moved, base)
	}
	if n := base.WithStations(7).Stations; n != 7 {
		t.Errorf("WithStations = %d, want 7", n)
	}
}

func TestTransmitTimeLinear(t *testing.T) {
	cfg := validConfig()
	f := func(bits uint16) bool {
		got := cfg.TransmitTime(float64(bits))
		want := float64(bits) / cfg.BandwidthBPS
		return got == want && cfg.TransmitTime(0) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMbps(t *testing.T) {
	if got := Mbps(4); got != 4e6 {
		t.Errorf("Mbps(4) = %v, want 4e6", got)
	}
}

func TestBitTime(t *testing.T) {
	cfg := validConfig()
	if got, want := cfg.BitTime(), 1/cfg.BandwidthBPS; got != want {
		t.Errorf("BitTime() = %v, want %v", got, want)
	}
}
