package message

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func sampleSet() Set {
	return Set{
		{Name: "a", Period: 10e-3, LengthBits: 1000},
		{Name: "b", Period: 50e-3, LengthBits: 5000},
		{Name: "c", Period: 20e-3, LengthBits: 400},
	}
}

func TestStreamValidate(t *testing.T) {
	tests := []struct {
		name   string
		stream Stream
		want   error
	}{
		{"valid", Stream{Period: 1, LengthBits: 1}, nil},
		{"zero period", Stream{Period: 0, LengthBits: 1}, ErrBadPeriod},
		{"negative period", Stream{Period: -1, LengthBits: 1}, ErrBadPeriod},
		{"nan period", Stream{Period: math.NaN(), LengthBits: 1}, ErrBadPeriod},
		{"inf period", Stream{Period: math.Inf(1), LengthBits: 1}, ErrBadPeriod},
		{"zero length", Stream{Period: 1, LengthBits: 0}, ErrBadLength},
		{"negative length", Stream{Period: 1, LengthBits: -5}, ErrBadLength},
		{"nan length", Stream{Period: 1, LengthBits: math.NaN()}, ErrBadLength},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.stream.Validate()
			if tt.want == nil {
				if err != nil {
					t.Errorf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tt.want) {
				t.Errorf("Validate() = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestSetValidate(t *testing.T) {
	if err := (Set{}).Validate(); !errors.Is(err, ErrEmptySet) {
		t.Errorf("empty set: Validate() = %v, want ErrEmptySet", err)
	}
	if err := sampleSet().Validate(); err != nil {
		t.Errorf("valid set: Validate() = %v, want nil", err)
	}
	bad := sampleSet()
	bad[1].Period = -1
	if err := bad.Validate(); !errors.Is(err, ErrBadPeriod) {
		t.Errorf("Validate() = %v, want ErrBadPeriod", err)
	}
}

func TestUtilization(t *testing.T) {
	set := sampleSet()
	const bw = 1e6
	want := 1000/1e6/10e-3 + 5000/1e6/50e-3 + 400/1e6/20e-3
	if got := set.Utilization(bw); math.Abs(got-want) > 1e-15 {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
	// Utilization(bw) and TotalBitsPerSecond()/bw must agree.
	if got, want := set.Utilization(bw), set.TotalBitsPerSecond()/bw; math.Abs(got-want) > 1e-15 {
		t.Errorf("Utilization = %v, TotalBitsPerSecond/bw = %v", got, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	set := sampleSet()
	clone := set.Clone()
	clone[0].LengthBits = 999999
	if set[0].LengthBits == clone[0].LengthBits {
		t.Fatal("Clone shares backing storage with the original")
	}
}

func TestSortRM(t *testing.T) {
	sorted := sampleSet().SortRM()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Period > sorted[i].Period {
			t.Fatalf("SortRM not ascending: %v", sorted)
		}
	}
	if sorted[0].Name != "a" || sorted[1].Name != "c" || sorted[2].Name != "b" {
		t.Errorf("SortRM order = %v %v %v, want a c b", sorted[0].Name, sorted[1].Name, sorted[2].Name)
	}
	// Original untouched.
	orig := sampleSet()
	if orig[1].Name != "b" {
		t.Error("SortRM mutated its receiver")
	}
}

func TestSortRMStableOnTies(t *testing.T) {
	set := Set{
		{Name: "first", Period: 10e-3, LengthBits: 1},
		{Name: "second", Period: 10e-3, LengthBits: 2},
		{Name: "third", Period: 10e-3, LengthBits: 3},
	}
	sorted := set.SortRM()
	for i, want := range []string{"first", "second", "third"} {
		if sorted[i].Name != want {
			t.Fatalf("tie order broken at %d: got %q want %q", i, sorted[i].Name, want)
		}
	}
}

func TestScaleProperties(t *testing.T) {
	f := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw)/64 + 0.01
		set := sampleSet()
		scaled := set.Scale(scale)
		for i := range set {
			if scaled[i].Period != set[i].Period {
				return false
			}
			if math.Abs(scaled[i].LengthBits-set[i].LengthBits*scale) > 1e-9 {
				return false
			}
		}
		// Utilization scales linearly.
		return math.Abs(scaled.Utilization(1e6)-set.Utilization(1e6)*scale) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleToUtilization(t *testing.T) {
	set := sampleSet()
	got, err := set.ScaleToUtilization(0.42, 1e6)
	if err != nil {
		t.Fatalf("ScaleToUtilization: %v", err)
	}
	if u := got.Utilization(1e6); math.Abs(u-0.42) > 1e-12 {
		t.Errorf("resulting utilization = %v, want 0.42", u)
	}
	if _, err := set.ScaleToUtilization(0, 1e6); !errors.Is(err, ErrBadUtilization) {
		t.Errorf("zero target: err = %v, want ErrBadUtilization", err)
	}
	if _, err := set.ScaleToUtilization(0.3, 0); !errors.Is(err, ErrBadBandwidth) {
		t.Errorf("zero bandwidth: err = %v, want ErrBadBandwidth", err)
	}
}

func TestMinMaxPeriod(t *testing.T) {
	set := sampleSet()
	if got := set.MinPeriod(); got != 10e-3 {
		t.Errorf("MinPeriod = %v, want 10ms", got)
	}
	if got := set.MaxPeriod(); got != 50e-3 {
		t.Errorf("MaxPeriod = %v, want 50ms", got)
	}
}

func TestStreamLengthAndUtilization(t *testing.T) {
	s := Stream{Period: 20e-3, LengthBits: 4000}
	if got := s.Length(2e6); got != 2e-3 {
		t.Errorf("Length = %v, want 2ms", got)
	}
	if got := s.Utilization(2e6); math.Abs(got-0.1) > 1e-15 {
		t.Errorf("Utilization = %v, want 0.1", got)
	}
}
