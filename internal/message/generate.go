package message

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Errors returned by generator validation.
var (
	ErrBadStreamCount = errors.New("message: stream count must be positive")
	ErrBadMeanPeriod  = errors.New("message: mean period must be positive")
	ErrBadRatio       = errors.New("message: max/min period ratio must be >= 1")
	ErrNilRand        = errors.New("message: generator requires a non-nil *rand.Rand")
)

// PeriodModel selects the distribution periods are drawn from.
type PeriodModel int

const (
	// PeriodsUniform draws periods uniformly from [Pmin, Pmax], the
	// distribution used in the paper's comparison (Section 6.2).
	PeriodsUniform PeriodModel = iota + 1
	// PeriodsLogUniform draws log(P) uniformly, spreading samples evenly
	// across decades; used by the ablation experiments.
	PeriodsLogUniform
	// PeriodsEqual makes every period equal to the mean; used by the TTRT
	// selection experiment, which the paper derives for equal periods.
	PeriodsEqual
	// PeriodsHarmonic draws periods as Pmin·2^k (k uniform over the
	// powers of two inside [Pmin, Pmax]). Harmonic sets are the classic
	// best case for rate-monotonic scheduling: ideal RM reaches 100 %
	// breakdown utilization on them.
	PeriodsHarmonic
)

// String implements fmt.Stringer.
func (p PeriodModel) String() string {
	switch p {
	case PeriodsUniform:
		return "uniform"
	case PeriodsLogUniform:
		return "log-uniform"
	case PeriodsEqual:
		return "equal"
	case PeriodsHarmonic:
		return "harmonic"
	default:
		return fmt.Sprintf("PeriodModel(%d)", int(p))
	}
}

// LengthModel selects how relative message lengths are drawn. Absolute
// magnitude is irrelevant to breakdown estimation (sets are rescaled to
// saturation); only the mix matters.
type LengthModel int

const (
	// LengthsProportional draws each stream's payload as an independent
	// uniform fraction of its own period, so expected per-stream
	// utilization is equal across streams. This mirrors the
	// Lehoczky–Sha–Ding Monte Carlo setup.
	LengthsProportional LengthModel = iota + 1
	// LengthsUniform draws payloads independent of the period, biasing
	// utilization toward short-period streams.
	LengthsUniform
	// LengthsEqual gives every stream the same payload.
	LengthsEqual
)

// String implements fmt.Stringer.
func (l LengthModel) String() string {
	switch l {
	case LengthsProportional:
		return "proportional"
	case LengthsUniform:
		return "uniform"
	case LengthsEqual:
		return "equal"
	default:
		return fmt.Sprintf("LengthModel(%d)", int(l))
	}
}

// Generator draws random synchronous message sets for Monte Carlo
// estimation. The paper's comparison uses n=100 streams with uniform
// periods of mean 100 ms and a max/min ratio of 10.
type Generator struct {
	// Streams is the number of streams n (one per station).
	Streams int
	// MeanPeriod is the average period in seconds.
	MeanPeriod float64
	// PeriodRatio is the max/min period ratio (>= 1).
	PeriodRatio float64
	// Periods selects the period distribution; zero value means
	// PeriodsUniform.
	Periods PeriodModel
	// Lengths selects the relative length mix; zero value means
	// LengthsProportional.
	Lengths LengthModel
	// ReferenceBandwidthBPS sets the scale of the initial (pre-saturation)
	// payload draw; zero means 1e6. It has no effect on breakdown results.
	ReferenceBandwidthBPS float64
}

// PaperGenerator returns the generator configured exactly as in the paper's
// comparison: 100 streams, uniform periods, mean 100 ms, ratio 10.
func PaperGenerator() Generator {
	return Generator{
		Streams:     100,
		MeanPeriod:  100e-3,
		PeriodRatio: 10,
	}
}

// Validate reports the first invalid generator parameter, or nil.
func (g Generator) Validate() error {
	switch {
	case g.Streams <= 0:
		return ErrBadStreamCount
	case g.MeanPeriod <= 0:
		return ErrBadMeanPeriod
	case g.PeriodRatio < 1:
		return ErrBadRatio
	}
	return nil
}

// PeriodBounds returns [Pmin, Pmax] such that (Pmin+Pmax)/2 == MeanPeriod
// and Pmax/Pmin == PeriodRatio.
func (g Generator) PeriodBounds() (pmin, pmax float64) {
	pmin = 2 * g.MeanPeriod / (1 + g.PeriodRatio)
	pmax = pmin * g.PeriodRatio
	return pmin, pmax
}

// Draw generates one random message set. The same rng state always yields
// the same set, making experiments reproducible.
func (g Generator) Draw(rng *rand.Rand) (Set, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, ErrNilRand
	}
	refBW := g.ReferenceBandwidthBPS
	if refBW == 0 {
		refBW = 1e6
	}
	pmin, pmax := g.PeriodBounds()
	set := make(Set, g.Streams)
	for i := range set {
		var period float64
		switch g.Periods {
		case PeriodsLogUniform:
			period = pmin * math.Exp(rng.Float64()*math.Log(pmax/pmin))
		case PeriodsEqual:
			period = g.MeanPeriod
		case PeriodsHarmonic:
			// Powers of two inside [pmin, pmax]: k ∈ 0..⌊log2(ratio)⌋.
			kmax := int(math.Floor(math.Log2(pmax / pmin)))
			period = pmin * math.Pow(2, float64(rng.Intn(kmax+1)))
		default: // PeriodsUniform and zero value
			period = pmin + rng.Float64()*(pmax-pmin)
		}
		// Draw a strictly positive fraction to keep lengths valid.
		frac := 1 - rng.Float64() // in (0, 1]
		var bits float64
		switch g.Lengths {
		case LengthsUniform:
			bits = frac * g.MeanPeriod * refBW
		case LengthsEqual:
			bits = 0.5 * g.MeanPeriod * refBW
		default: // LengthsProportional and zero value
			bits = frac * period * refBW
		}
		set[i] = Stream{
			Name:       fmt.Sprintf("S%d", i+1),
			Period:     period,
			LengthBits: bits,
		}
	}
	return set, nil
}
