package message

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeneratorValidate(t *testing.T) {
	tests := []struct {
		name string
		gen  Generator
		want error
	}{
		{"valid", Generator{Streams: 10, MeanPeriod: 0.1, PeriodRatio: 10}, nil},
		{"zero streams", Generator{MeanPeriod: 0.1, PeriodRatio: 10}, ErrBadStreamCount},
		{"zero mean", Generator{Streams: 10, PeriodRatio: 10}, ErrBadMeanPeriod},
		{"ratio below one", Generator{Streams: 10, MeanPeriod: 0.1, PeriodRatio: 0.5}, ErrBadRatio},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.gen.Validate()
			if tt.want == nil && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Errorf("Validate() = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestDrawNilRand(t *testing.T) {
	gen := PaperGenerator()
	if _, err := gen.Draw(nil); !errors.Is(err, ErrNilRand) {
		t.Errorf("Draw(nil) err = %v, want ErrNilRand", err)
	}
}

func TestPeriodBounds(t *testing.T) {
	gen := Generator{Streams: 1, MeanPeriod: 100e-3, PeriodRatio: 10}
	pmin, pmax := gen.PeriodBounds()
	if math.Abs((pmin+pmax)/2-gen.MeanPeriod) > 1e-15 {
		t.Errorf("midpoint %v, want %v", (pmin+pmax)/2, gen.MeanPeriod)
	}
	if math.Abs(pmax/pmin-gen.PeriodRatio) > 1e-12 {
		t.Errorf("ratio %v, want %v", pmax/pmin, gen.PeriodRatio)
	}
}

func TestDrawRespectsBoundsAndValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, pm := range []PeriodModel{PeriodsUniform, PeriodsLogUniform, PeriodsEqual} {
		for _, lm := range []LengthModel{LengthsProportional, LengthsUniform, LengthsEqual} {
			gen := Generator{Streams: 50, MeanPeriod: 100e-3, PeriodRatio: 10, Periods: pm, Lengths: lm}
			set, err := gen.Draw(rng)
			if err != nil {
				t.Fatalf("Draw(%v,%v): %v", pm, lm, err)
			}
			if err := set.Validate(); err != nil {
				t.Fatalf("Draw(%v,%v) produced invalid set: %v", pm, lm, err)
			}
			if len(set) != 50 {
				t.Fatalf("Draw produced %d streams, want 50", len(set))
			}
			pmin, pmax := gen.PeriodBounds()
			for _, s := range set {
				if s.Period < pmin-1e-12 || s.Period > pmax+1e-12 {
					t.Fatalf("period %v outside [%v, %v] under %v", s.Period, pmin, pmax, pm)
				}
			}
		}
	}
}

func TestDrawEqualPeriods(t *testing.T) {
	gen := Generator{Streams: 10, MeanPeriod: 50e-3, PeriodRatio: 4, Periods: PeriodsEqual}
	set, err := gen.Draw(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range set {
		if s.Period != 50e-3 {
			t.Fatalf("PeriodsEqual produced period %v, want 50ms", s.Period)
		}
	}
}

func TestDrawHarmonicPeriods(t *testing.T) {
	gen := Generator{Streams: 60, MeanPeriod: 100e-3, PeriodRatio: 10, Periods: PeriodsHarmonic}
	set, err := gen.Draw(rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	pmin, pmax := gen.PeriodBounds()
	for _, s := range set {
		if s.Period < pmin-1e-12 || s.Period > pmax+1e-12 {
			t.Fatalf("harmonic period %v outside [%v, %v]", s.Period, pmin, pmax)
		}
		// Every period must be pmin × a power of two.
		ratio := s.Period / pmin
		k := math.Log2(ratio)
		if math.Abs(k-math.Round(k)) > 1e-9 {
			t.Fatalf("period %v is not pmin·2^k (ratio %v)", s.Period, ratio)
		}
	}
	// Any two periods divide each other (harmonic chain).
	for _, a := range set {
		for _, b := range set {
			lo, hi := a.Period, b.Period
			if lo > hi {
				lo, hi = hi, lo
			}
			q := hi / lo
			if math.Abs(q-math.Round(q)) > 1e-9 {
				t.Fatalf("periods %v and %v not harmonic", a.Period, b.Period)
			}
		}
	}
}

func TestDrawDeterministic(t *testing.T) {
	gen := PaperGenerator()
	a, err := gen.Draw(rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Draw(rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different sets at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDrawDifferentSeedsDiffer(t *testing.T) {
	gen := PaperGenerator()
	a, _ := gen.Draw(rand.New(rand.NewSource(1)))
	b, _ := gen.Draw(rand.New(rand.NewSource(2)))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sets")
	}
}

func TestDrawMeanPeriodConverges(t *testing.T) {
	// The empirical mean over many uniform draws should approach the
	// configured mean.
	gen := Generator{Streams: 5000, MeanPeriod: 100e-3, PeriodRatio: 10}
	set, err := gen.Draw(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range set {
		sum += s.Period
	}
	mean := sum / float64(len(set))
	if math.Abs(mean-100e-3) > 5e-3 {
		t.Errorf("empirical mean period %v, want ≈100ms", mean)
	}
}

func TestDrawPropertyAllValid(t *testing.T) {
	f := func(seed int64, streamsRaw uint8, ratioRaw uint8) bool {
		gen := Generator{
			Streams:     int(streamsRaw%64) + 1,
			MeanPeriod:  10e-3,
			PeriodRatio: 1 + float64(ratioRaw)/8,
		}
		set, err := gen.Draw(rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		return set.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestModelStrings(t *testing.T) {
	if PeriodsUniform.String() != "uniform" || PeriodsLogUniform.String() != "log-uniform" ||
		PeriodsEqual.String() != "equal" || PeriodsHarmonic.String() != "harmonic" {
		t.Error("PeriodModel.String mismatch")
	}
	if LengthsProportional.String() != "proportional" || LengthsUniform.String() != "uniform" ||
		LengthsEqual.String() != "equal" {
		t.Error("LengthModel.String mismatch")
	}
	if PeriodModel(99).String() == "" || LengthModel(99).String() == "" {
		t.Error("unknown model String should be non-empty")
	}
}
