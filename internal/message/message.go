// Package message models synchronous real-time message streams and message
// sets per Section 3.2 of Kamat & Zhao (ICDCS 1993): each station carries
// one periodic stream whose deadline is the end of its period.
//
// All times are in seconds; payload lengths are carried both in bits and as
// transmission time at a given bandwidth.
package message

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Errors returned by validation.
var (
	ErrEmptySet       = errors.New("message: set is empty")
	ErrBadPeriod      = errors.New("message: period must be positive")
	ErrBadLength      = errors.New("message: length must be positive")
	ErrLengthExceeds  = errors.New("message: length exceeds period (utilization > 1 per stream)")
	ErrBadBandwidth   = errors.New("message: bandwidth must be positive")
	ErrBadUtilization = errors.New("message: target utilization must be positive")
)

// Stream is one periodic synchronous message stream S_i. Period is P_i in
// seconds; LengthBits is C_i^b, the payload size per message in bits.
type Stream struct {
	// Name optionally identifies the stream in reports ("S3", "gyro", ...).
	Name string
	// Period is the constant inter-arrival time P_i in seconds. The
	// deadline of each message is the end of the period it arrives in.
	Period float64
	// LengthBits is the payload size C_i^b in bits per message.
	LengthBits float64
}

// Length is C_i, the payload transmission time at the given bandwidth.
func (s Stream) Length(bandwidthBPS float64) float64 {
	return s.LengthBits / bandwidthBPS
}

// Utilization is the fraction of medium time the stream needs for payload
// alone at the given bandwidth: C_i / P_i.
func (s Stream) Utilization(bandwidthBPS float64) float64 {
	return s.Length(bandwidthBPS) / s.Period
}

// Validate reports the first violated stream constraint, or nil.
func (s Stream) Validate() error {
	switch {
	case s.Period <= 0 || math.IsNaN(s.Period) || math.IsInf(s.Period, 0):
		return fmt.Errorf("%w: %v", ErrBadPeriod, s.Period)
	case s.LengthBits <= 0 || math.IsNaN(s.LengthBits) || math.IsInf(s.LengthBits, 0):
		return fmt.Errorf("%w: %v bits", ErrBadLength, s.LengthBits)
	}
	return nil
}

// Set is a synchronous message set M = {S_1, ..., S_n}. Sets are treated as
// values: functions that transform a Set return a new one.
type Set []Stream

// Clone returns a deep copy of the set.
func (m Set) Clone() Set {
	out := make(Set, len(m))
	copy(out, m)
	return out
}

// Validate reports the first invalid stream (wrapped with its index), or
// ErrEmptySet for an empty set.
func (m Set) Validate() error {
	if len(m) == 0 {
		return ErrEmptySet
	}
	for i, s := range m {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("stream %d: %w", i, err)
		}
	}
	return nil
}

// Utilization is U(M) = Σ C_i/P_i at the given bandwidth: the fraction of
// time the network spends transmitting synchronous payload.
func (m Set) Utilization(bandwidthBPS float64) float64 {
	var u float64
	for _, s := range m {
		u += s.Utilization(bandwidthBPS)
	}
	return u
}

// TotalBitsPerSecond is Σ C_i^b/P_i, the aggregate synchronous payload rate.
// Utilization(bw) == TotalBitsPerSecond()/bw; sweeps use this form to avoid
// recomputing per-bandwidth.
func (m Set) TotalBitsPerSecond() float64 {
	var r float64
	for _, s := range m {
		r += s.LengthBits / s.Period
	}
	return r
}

// MinPeriod returns the smallest period in the set. It panics on an empty
// set; callers validate first.
func (m Set) MinPeriod() float64 {
	p := math.Inf(1)
	for _, s := range m {
		if s.Period < p {
			p = s.Period
		}
	}
	return p
}

// MaxPeriod returns the largest period in the set.
func (m Set) MaxPeriod() float64 {
	p := math.Inf(-1)
	for _, s := range m {
		if s.Period > p {
			p = s.Period
		}
	}
	return p
}

// SortRM returns a copy of the set in rate-monotonic order: shortest period
// (highest priority) first. Ties are broken by original position, keeping
// the sort stable and deterministic.
func (m Set) SortRM() Set {
	out := m.Clone()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Period < out[j].Period })
	return out
}

// Scale returns a copy of the set with every payload length multiplied by
// factor. The breakdown engine uses this to walk a set toward saturation.
func (m Set) Scale(factor float64) Set {
	out := m.Clone()
	for i := range out {
		out[i].LengthBits *= factor
	}
	return out
}

// ScaleToUtilization returns a copy of the set whose utilization at the
// given bandwidth equals target, preserving the relative length mix.
func (m Set) ScaleToUtilization(target, bandwidthBPS float64) (Set, error) {
	if target <= 0 {
		return nil, ErrBadUtilization
	}
	if bandwidthBPS <= 0 {
		return nil, ErrBadBandwidth
	}
	u := m.Utilization(bandwidthBPS)
	if u == 0 {
		return nil, ErrEmptySet
	}
	return m.Scale(target / u), nil
}
