package message

import (
	"encoding/json"
	"fmt"
	"io"
)

// streamJSON is the on-disk representation of a Stream. Periods are
// expressed in milliseconds, the natural unit of the paper's workloads.
type streamJSON struct {
	Name       string  `json:"name,omitempty"`
	PeriodMs   float64 `json:"periodMs"`
	LengthBits float64 `json:"lengthBits"`
}

// ReadJSON decodes a message set from JSON: an array of
// {"name", "periodMs", "lengthBits"} objects. The decoded set is
// validated.
func ReadJSON(r io.Reader) (Set, error) {
	var raw []streamJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("decode message set: %w", err)
	}
	set := make(Set, len(raw))
	for i, s := range raw {
		set[i] = Stream{Name: s.Name, Period: s.PeriodMs / 1e3, LengthBits: s.LengthBits}
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

// WriteJSON encodes the set as indented JSON in the ReadJSON format.
func (m Set) WriteJSON(w io.Writer) error {
	raw := make([]streamJSON, len(m))
	for i, s := range m {
		raw[i] = streamJSON{Name: s.Name, PeriodMs: s.Period * 1e3, LengthBits: s.LengthBits}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(raw); err != nil {
		return fmt.Errorf("encode message set: %w", err)
	}
	return nil
}
