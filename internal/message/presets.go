package message

import (
	"errors"
	"fmt"
)

// ErrUnknownPreset is returned by PresetByName for unregistered names.
var ErrUnknownPreset = errors.New("message: unknown workload preset")

// Preset is a named, documented synchronous workload: a concrete message
// set representing one of the application domains the paper's protocols
// were designed for. Presets give the CLIs, examples and tests realistic
// fixed workloads with stable characteristics.
type Preset struct {
	// Name identifies the preset ("avionics", "process-control", ...).
	Name string
	// Description says what the workload models.
	Description string
	// Set is the message set; periods in seconds, payloads in bits.
	Set Set
}

// Presets returns the built-in workload suites.
func Presets() []Preset {
	return []Preset{
		{
			Name: "avionics",
			Description: "SAFENET-style mission bus: tight control loops, " +
				"sensor fusion and datalink traffic for a 4–16 Mbps ring",
			Set: Set{
				{Name: "flight-controls", Period: 20e-3, LengthBits: 6_000},
				{Name: "radar-track", Period: 25e-3, LengthBits: 8_000},
				{Name: "nav-update", Period: 40e-3, LengthBits: 12_000},
				{Name: "engine-monitor", Period: 50e-3, LengthBits: 8_000},
				{Name: "ecm-alerts", Period: 80e-3, LengthBits: 16_000},
				{Name: "datalink", Period: 100e-3, LengthBits: 48_000},
				{Name: "mission-log", Period: 200e-3, LengthBits: 96_000},
				{Name: "maintenance", Period: 400e-3, LengthBits: 64_000},
			},
		},
		{
			Name: "process-control",
			Description: "plant automation: many fast small control loops " +
				"plus slow supervisory and historian traffic",
			Set: Set{
				{Name: "loop-1", Period: 5e-3, LengthBits: 512},
				{Name: "loop-2", Period: 5e-3, LengthBits: 512},
				{Name: "loop-3", Period: 10e-3, LengthBits: 1_024},
				{Name: "loop-4", Period: 10e-3, LengthBits: 1_024},
				{Name: "loop-5", Period: 20e-3, LengthBits: 2_048},
				{Name: "loop-6", Period: 20e-3, LengthBits: 2_048},
				{Name: "alarms", Period: 50e-3, LengthBits: 4_096},
				{Name: "supervisory", Period: 100e-3, LengthBits: 32_768},
				{Name: "historian", Period: 500e-3, LengthBits: 262_144},
				{Name: "operator-hmi", Period: 250e-3, LengthBits: 65_536},
			},
		},
		{
			Name: "space-station",
			Description: "FDDI backbone for a crewed station: guidance, " +
				"life support, experiments and video at 100 Mbps",
			Set: Set{
				{Name: "guidance-a", Period: 10e-3, LengthBits: 8_192},
				{Name: "guidance-b", Period: 10e-3, LengthBits: 8_192},
				{Name: "lifesupport-a", Period: 50e-3, LengthBits: 32_768},
				{Name: "lifesupport-b", Period: 50e-3, LengthBits: 32_768},
				{Name: "experiment-1", Period: 100e-3, LengthBits: 131_072},
				{Name: "experiment-2", Period: 100e-3, LengthBits: 131_072},
				{Name: "experiment-3", Period: 100e-3, LengthBits: 131_072},
				{Name: "video-1", Period: 33e-3, LengthBits: 262_144},
				{Name: "video-2", Period: 33e-3, LengthBits: 262_144},
				{Name: "telemetry", Period: 200e-3, LengthBits: 524_288},
			},
		},
		{
			Name: "multimedia",
			Description: "audio/video distribution: isochronous media " +
				"streams with a control channel",
			Set: Set{
				{Name: "audio-1", Period: 10e-3, LengthBits: 4_096},
				{Name: "audio-2", Period: 10e-3, LengthBits: 4_096},
				{Name: "video-sd", Period: 33e-3, LengthBits: 131_072},
				{Name: "video-hd", Period: 33e-3, LengthBits: 524_288},
				{Name: "control", Period: 100e-3, LengthBits: 2_048},
			},
		},
	}
}

// PresetByName looks up one preset by name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("%w: %q", ErrUnknownPreset, name)
}
