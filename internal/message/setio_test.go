package message

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := sampleSet()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip length %d, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i].Name != orig[i].Name || got[i].LengthBits != orig[i].LengthBits {
			t.Errorf("stream %d: got %+v, want %+v", i, got[i], orig[i])
		}
		if diff := got[i].Period - orig[i].Period; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("stream %d period: got %v, want %v", i, got[i].Period, orig[i].Period)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"not json", "nope"},
		{"unknown field", `[{"periodMs": 10, "lengthBits": 1, "bogus": 2}]`},
		{"zero period", `[{"periodMs": 0, "lengthBits": 1}]`},
		{"negative length", `[{"periodMs": 5, "lengthBits": -2}]`},
		{"empty set", `[]`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ReadJSON(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestReadJSONExample(t *testing.T) {
	in := `[
	  {"name": "ctrl", "periodMs": 10, "lengthBits": 4096},
	  {"periodMs": 100, "lengthBits": 1024}
	]`
	set, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if set[0].Name != "ctrl" || set[0].Period != 10e-3 || set[0].LengthBits != 4096 {
		t.Errorf("first stream = %+v", set[0])
	}
	if set[1].Name != "" || set[1].Period != 100e-3 {
		t.Errorf("second stream = %+v", set[1])
	}
}
