package message

import (
	"errors"
	"testing"
)

func TestPresetsAreValid(t *testing.T) {
	presets := Presets()
	if len(presets) < 4 {
		t.Fatalf("only %d presets", len(presets))
	}
	seen := map[string]bool{}
	for _, p := range presets {
		if p.Name == "" || p.Description == "" {
			t.Errorf("preset %+v missing name or description", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate preset name %q", p.Name)
		}
		seen[p.Name] = true
		if err := p.Set.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", p.Name, err)
		}
		for _, s := range p.Set {
			if s.Name == "" {
				t.Errorf("preset %q has unnamed stream", p.Name)
			}
		}
	}
}

func TestPresetByName(t *testing.T) {
	p, err := PresetByName("avionics")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "avionics" || len(p.Set) == 0 {
		t.Errorf("PresetByName = %+v", p)
	}
	if _, err := PresetByName("nope"); !errors.Is(err, ErrUnknownPreset) {
		t.Errorf("unknown preset: %v, want ErrUnknownPreset", err)
	}
}

func TestPresetsFitTheirDesignBandwidth(t *testing.T) {
	// Each preset should be carryable (payload utilization < 1) on the
	// slow ring class it is described for.
	bw := map[string]float64{
		"avionics":        4e6,
		"process-control": 4e6,
		"space-station":   100e6,
		"multimedia":      100e6,
	}
	for _, p := range Presets() {
		b, ok := bw[p.Name]
		if !ok {
			b = 100e6
		}
		if u := p.Set.Utilization(b); u >= 1 {
			t.Errorf("preset %q needs utilization %.3f at %.0f Mbps", p.Name, u, b/1e6)
		}
	}
}

func TestPresetSetsAreFresh(t *testing.T) {
	// Mutating a returned preset must not affect later calls.
	a, err := PresetByName("multimedia")
	if err != nil {
		t.Fatal(err)
	}
	a.Set[0].LengthBits = 1
	b, err := PresetByName("multimedia")
	if err != nil {
		t.Fatal(err)
	}
	if b.Set[0].LengthBits == 1 {
		t.Error("presets share backing storage across calls")
	}
}
