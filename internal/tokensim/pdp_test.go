package tokensim

import (
	"math"
	"math/rand"
	"testing"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/frame"
	"ringsched/internal/message"
	"ringsched/internal/ring"
)

// tinyPlant is the canonical hand-checkable ring (ring.Tiny) at 4 stations:
// Θ = 4 µs, hop time 1 µs.
func tinyPlant() ring.Config { return ring.Tiny(4) }

// tinyFrame: 8 info bits + 2 overhead bits ⇒ F = 10 µs > Θ.
func tinyFrame() frame.Spec { return frame.Spec{InfoBits: 8, OvhdBits: 2} }

func onePDPStream(bits float64) Workload {
	w, err := NewWorkload(message.Set{{Name: "s", Period: 1, LengthBits: bits}},
		4, PhasingSynchronized, nil)
	if err != nil {
		panic(err)
	}
	return w
}

func TestPDPSimHandTimingModified(t *testing.T) {
	// Two full frames back to back, no token pass between them (the
	// modified holder keeps the token): completion at 2F = 20 µs.
	res, err := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: onePDPStream(16),
		Horizon:  0.1,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", res.DeadlineMisses)
	}
	if got := res.Stations[0].MaxResponse; math.Abs(got-20e-6) > 1e-12 {
		t.Errorf("response = %v, want 20us", got)
	}
	if res.TokenTime != 0 {
		t.Errorf("token time = %v, want 0 (holder never releases)", res.TokenTime)
	}
}

func TestPDPSimHandTimingStandard(t *testing.T) {
	// Standard protocol: a free token after every frame; the sole sender
	// waits a full circulation (4 µs) before recapturing. Completion:
	// 10 + 4 + 10 = 24 µs.
	res, err := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Standard8025,
		Workload: onePDPStream(16),
		Horizon:  0.1,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stations[0].MaxResponse; math.Abs(got-24e-6) > 1e-12 {
		t.Errorf("response = %v, want 24us", got)
	}
	if math.Abs(res.TokenTime-4e-6) > 1e-12 {
		t.Errorf("token time = %v, want 4us (one full circulation)", res.TokenTime)
	}
}

func TestPDPSimShortLastFrameWaitsForTheta(t *testing.T) {
	// 9 bits = one full frame + a 1-bit frame. The short frame's wire
	// time (3 µs) is below Θ = 4 µs, so it occupies Θ.
	res, err := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: onePDPStream(9),
		Horizon:  0.1,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 10e-6 + 4e-6 // F + Θ
	if got := res.Stations[0].MaxResponse; math.Abs(got-want) > 1e-12 {
		t.Errorf("response = %v, want %v", got, want)
	}
}

func TestPDPSimHighBandwidthFrameCostsTheta(t *testing.T) {
	// Make F ≤ Θ (longer token): every frame occupies Θ.
	net := tinyPlant()
	net.TokenBits = 20 // Θ = 20 µs > F = 10 µs
	res, err := PDPSim{
		Net:      net,
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: onePDPStream(16),
		Horizon:  0.1,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stations[0].MaxResponse; math.Abs(got-40e-6) > 1e-12 {
		t.Errorf("response = %v, want 2Θ = 40us", got)
	}
}

func TestPDPSimRMPriorityOrdering(t *testing.T) {
	// Two stations, synchronized arrivals: the shorter-period stream's
	// frame must transmit first even though it sits at a later station.
	set := message.Set{
		{Name: "slow", Period: 100e-3, LengthBits: 8},
		{Name: "fast", Period: 10e-3, LengthBits: 8},
	}
	w, err := NewWorkload(set, 4, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: w,
		Horizon:  5e-3,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	fast := res.Stations[1]
	slow := res.Stations[0]
	if fast.MaxResponse >= slow.MaxResponse {
		t.Errorf("fast stream response %v not below slow %v", fast.MaxResponse, slow.MaxResponse)
	}
}

func TestPDPSimDetectsOverload(t *testing.T) {
	// A stream needing 2 s of medium per 1 s period must miss.
	res, err := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: onePDPStream(2e6 * 1.0),
		Horizon:  3,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses == 0 {
		t.Fatal("overloaded stream missed no deadlines")
	}
}

func TestPDPSimAsyncBlockingBounded(t *testing.T) {
	// With saturated asynchronous traffic the medium is always busy, but
	// a synchronous arrival is delayed by at most the Lemma 4.1 bound
	// before its first frame starts: here one async frame + token walk.
	res, err := PDPSim{
		Net:            tinyPlant(),
		Frame:          tinyFrame(),
		Variant:        core.Modified8025,
		Workload:       onePDPStream(8),
		AsyncSaturated: true,
		Horizon:        2,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", res.DeadlineMisses)
	}
	blockBound := 2 * math.Max(tinyFrame().Time(1e6), tinyPlant().Theta())
	// Response ≤ own frame time + blocking bound.
	if res.Stations[0].MaxResponse > 10e-6+blockBound {
		t.Errorf("response %v exceeds frame+blocking bound %v",
			res.Stations[0].MaxResponse, 10e-6+blockBound)
	}
	if res.AsyncTime == 0 {
		t.Error("async traffic never transmitted")
	}
	if res.Utilization() < 0.99 {
		t.Errorf("medium should be saturated, utilization %v", res.Utilization())
	}
}

func TestPDPSimAverageTokenPassModel(t *testing.T) {
	// Under PassAverageHalfTheta the standard protocol charges exactly
	// Θ/2 per frame.
	net := ring.IEEE8025(4e6).WithStations(8)
	set := message.Set{{Name: "s", Period: 10e-3, LengthBits: 4096}}
	w, err := NewWorkload(set, 8, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PDPSim{
		Net:       net,
		Frame:     frame.PaperSpec(),
		Variant:   core.Standard8025,
		Workload:  w,
		TokenPass: PassAverageHalfTheta,
		Horizon:   0.5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RotationMean-net.Theta()/2) > 1e-12 {
		t.Errorf("mean pass = %v, want Θ/2 = %v", res.RotationMean, net.Theta()/2)
	}
}

func TestPDPSimValidation(t *testing.T) {
	base := PDPSim{Net: tinyPlant(), Frame: tinyFrame(), Variant: core.Modified8025, Workload: onePDPStream(8)}
	bad := base
	bad.Variant = core.Variant(9)
	if _, err := bad.Run(); err == nil {
		t.Error("bad variant accepted")
	}
	bad = base
	bad.Net.Stations = 0
	if _, err := bad.Run(); err == nil {
		t.Error("bad plant accepted")
	}
	bad = base
	bad.Horizon = -1
	if _, err := bad.Run(); err == nil {
		t.Error("negative horizon accepted")
	}
	bad = base
	bad.Workload.Streams = nil
	if _, err := bad.Run(); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestPDPSimAgreesWithTheorem41(t *testing.T) {
	// Analytically guaranteed sets (at 92 % of saturation) must not miss
	// under worst-case phasing with saturated async interference, when
	// the simulator charges the analysis's token-pass average.
	rng := rand.New(rand.NewSource(3))
	gen := message.Generator{Streams: 10, MeanPeriod: 50e-3, PeriodRatio: 8}
	for _, bw := range []float64{4e6, 100e6} {
		for _, variant := range []core.Variant{core.Standard8025, core.Modified8025} {
			set, err := gen.Draw(rng)
			if err != nil {
				t.Fatal(err)
			}
			pdp := core.PDP{Net: ring.IEEE8025(bw).WithStations(10), Frame: frame.PaperSpec(), Variant: variant}
			sat, err := breakdown.Saturate(set, pdp, bw, breakdown.SaturateOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !sat.Feasible {
				t.Fatalf("setup: infeasible at %g bps", bw)
			}
			test := sat.Set.Scale(0.92)
			w, err := NewWorkload(test, 10, PhasingSynchronized, nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := PDPSim{
				Net:            pdp.Net,
				Frame:          pdp.Frame,
				Variant:        variant,
				Workload:       w,
				AsyncSaturated: true,
				TokenPass:      PassAverageHalfTheta,
				Horizon:        2,
			}.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.DeadlineMisses != 0 {
				t.Errorf("%v at %g bps: %d misses for an analytically guaranteed set",
					variant, bw, res.DeadlineMisses)
			}
		}
	}
}

func TestPDPSimIdleWithoutAsync(t *testing.T) {
	// A single short message then silence: the medium must go idle and
	// the simulation must still terminate at the horizon.
	res, err := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: onePDPStream(8),
		Horizon:  0.5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IdleTime <= 0 {
		t.Errorf("idle time = %v, want > 0", res.IdleTime)
	}
	if res.Horizon != 0.5 {
		t.Errorf("horizon = %v", res.Horizon)
	}
}
