package tokensim

import (
	"math"
	"math/rand"
	"testing"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/faults"
	"ringsched/internal/message"
)

func TestReservationHandTimingSingleStream(t *testing.T) {
	// One stream, two full frames on the tiny plant. Like the standard
	// protocol, the sender must let its free token circulate the whole
	// ring (4 hops × 1 µs) before recapturing: completion at
	// 10 + 4 + 10 = 24 µs.
	res, err := ReservationSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Workload: onePDPStream(16),
		Horizon:  0.01,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", res.DeadlineMisses)
	}
	if got := res.Stations[0].MaxResponse; math.Abs(got-24e-6) > 1e-12 {
		t.Errorf("response = %v, want 24us", got)
	}
	if res.PriorityInversions != 0 {
		t.Errorf("inversions = %d, want 0 (no contention)", res.PriorityInversions)
	}
}

func TestReservationPriorityArbitration(t *testing.T) {
	// Slow stream at station 0, fast at station 1, both arriving at t=0.
	// The token physically reaches station 0 first, so exactly one
	// lower-priority frame slips out (bounded priority inversion); the
	// reservation mechanism then hands the ring to the fast stream.
	set := message.Set{
		{Name: "slow", Period: 100e-3, LengthBits: 32}, // 4 frames
		{Name: "fast", Period: 10e-3, LengthBits: 16},  // 2 frames
	}
	w, err := NewWorkload(set, 4, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReservationSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Workload: w,
		Horizon:  5e-3,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", res.DeadlineMisses)
	}
	if res.PriorityInversions == 0 {
		t.Error("expected at least the initial token-position inversion")
	}
	fast, slow := res.Stations[1], res.Stations[0]
	if fast.MaxResponse >= slow.MaxResponse {
		t.Errorf("fast response %v not below slow %v", fast.MaxResponse, slow.MaxResponse)
	}
	// Lemma 4.1's blocking bound is hit with equality here: the slow
	// station slips one frame at t=0 (the token reaches it first) and one
	// more right after the stack unwinds — 2·max(F, Θ) = 20 µs of
	// lower-priority interference in total. The fast stream's own cost is
	// an initial hop + two frames + the recapture circulation = 25 µs.
	blocking := 2 * math.Max(tinyFrame().Time(1e6), tinyPlant().Theta())
	own := tinyPlant().Theta()/4 + 2*tinyFrame().Time(1e6) + tinyPlant().Theta()
	if fast.MaxResponse > own+blocking+1e-12 {
		t.Errorf("fast response %v exceeds own+blocking bound %v (Lemma 4.1 violated)",
			fast.MaxResponse, own+blocking)
	}
	if math.Abs(fast.MaxResponse-(own+blocking)) > 1e-9 {
		t.Logf("note: blocking below the Lemma 4.1 bound (response %v, bound %v)",
			fast.MaxResponse, own+blocking)
	}
}

func TestReservationStackUnwinds(t *testing.T) {
	// After a burst of high-priority traffic ends, the stacking station
	// must lower the ring priority so low-priority (async) traffic flows
	// again.
	set := message.Set{{Name: "hi", Period: 1e-3, LengthBits: 8}}
	w, err := NewWorkload(set, 4, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReservationSim{
		Net:            tinyPlant(),
		Frame:          tinyFrame(),
		Workload:       w,
		AsyncSaturated: true,
		Horizon:        50e-3,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", res.DeadlineMisses)
	}
	if res.AsyncTime == 0 {
		t.Error("async traffic starved: priority stack never unwound")
	}
	if res.SyncTime == 0 {
		t.Error("no sync traffic served")
	}
	// The 1 ms stream must keep making progress all run long.
	if res.Stations[0].Completed < 40 {
		t.Errorf("completed %d messages in 50 periods, want ≥ 40", res.Stations[0].Completed)
	}
}

func TestReservationLimitedPriorityLevels(t *testing.T) {
	// With a single ring priority level, rate-monotonic arbitration
	// degrades to token order and the fastest stream's worst response
	// grows.
	set := message.Set{
		{Name: "p1", Period: 5e-3, LengthBits: 64},
		{Name: "p2", Period: 20e-3, LengthBits: 256},
		{Name: "p3", Period: 40e-3, LengthBits: 256},
		{Name: "p4", Period: 80e-3, LengthBits: 512},
	}
	run := func(levels int) ReservationResult {
		w, err := NewWorkload(set, 4, PhasingSynchronized, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ReservationSim{
			Net:            tinyPlant(),
			Frame:          tinyFrame(),
			Workload:       w,
			PriorityLevels: levels,
			Horizon:        0.4,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ideal := run(0)  // distinct level per stream
	coarse := run(1) // everything at one level
	if ideal.DeadlineMisses != 0 {
		t.Fatalf("ideal levels missed %d deadlines", ideal.DeadlineMisses)
	}
	fastIdeal := ideal.Stations[0].MaxResponse
	fastCoarse := coarse.Stations[0].MaxResponse
	if fastCoarse <= fastIdeal {
		t.Errorf("single-level fast response %v not worse than per-stream levels %v",
			fastCoarse, fastIdeal)
	}
}

func TestReservationAgainstPDPSim(t *testing.T) {
	// The faithful MAC and the abstracted PDPSim must agree at modest
	// load: an analytically guaranteed set at half saturation meets every
	// deadline in both.
	const n, bw = 8, 4e6
	gen := message.Generator{Streams: n, MeanPeriod: 50e-3, PeriodRatio: 8}
	set, err := gen.Draw(rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	pdp := core.NewStandardPDP(bw)
	pdp.Net = pdp.Net.WithStations(n)
	sat, err := breakdown.Saturate(set, pdp, bw, breakdown.SaturateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sat.Feasible {
		t.Fatal("setup: infeasible")
	}
	test := sat.Set.Scale(0.5)
	w, err := NewWorkload(test, n, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReservationSim{
		Net:            pdp.Net,
		Frame:          pdp.Frame,
		Workload:       w,
		AsyncSaturated: true,
		Horizon:        2,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Errorf("reservation MAC missed %d deadlines at half the analytic saturation", res.DeadlineMisses)
	}
	if res.Utilization() < 0.9 {
		t.Errorf("medium should be nearly saturated with async, got %v", res.Utilization())
	}
}

func TestReservationValidation(t *testing.T) {
	base := ReservationSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Workload: onePDPStream(8),
	}
	bad := base
	bad.PriorityLevels = -1
	if _, err := bad.Run(); err == nil {
		t.Error("negative levels accepted")
	}
	bad = base
	bad.Net.Stations = 0
	if _, err := bad.Run(); err == nil {
		t.Error("bad plant accepted")
	}
	bad = base
	bad.Horizon = -1
	if _, err := bad.Run(); err == nil {
		t.Error("negative horizon accepted")
	}
	bad = base
	bad.Faults = &Faults{TokenLossProb: 2}
	if _, err := bad.Run(); err == nil {
		t.Error("invalid faults accepted")
	}
}

func TestReservationTokenLoss(t *testing.T) {
	sim := ReservationSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Workload: onePDPStream(8),
		Horizon:  5,
		Faults: &Faults{
			TokenLossProb: 1,
			Recovery:      faults.Recovery{Fixed: 1.5},
			Seed:          1,
		},
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TokenLosses == 0 {
		t.Error("no token losses recorded")
	}
	if res.DeadlineMisses == 0 {
		t.Error("period-scale recoveries should cause misses")
	}
}

func TestReservationIdleRingTokenCycles(t *testing.T) {
	// With no traffic the token just circulates; the run must terminate
	// at the horizon with pure token time.
	set := message.Set{{Name: "late", Period: 1, LengthBits: 8}}
	w, err := NewWorkload(set, 4, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Offsets[0] = 0.9 // arrives near the end
	res, err := ReservationSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Workload: w,
		Horizon:  10e-3,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncTime != 0 || res.AsyncTime != 0 {
		t.Errorf("idle ring transmitted: sync=%v async=%v", res.SyncTime, res.AsyncTime)
	}
	if res.TokenTime <= 0 {
		t.Error("token never circulated")
	}
}
