package tokensim

import (
	"math"
	"reflect"
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/ring"
	"ringsched/internal/topology"
)

// simLineTopology is a bridged 3-ring line a—b—c mixing all three
// protocols, mirroring the analysis-layer fixture.
func simLineTopology() topology.Topology {
	return topology.Topology{
		Nodes: []topology.Node{
			{Name: "a", Protocol: topology.Modified8025, Ring: ring.IEEE8025(16e6)},
			{Name: "b", Protocol: topology.FDDI, Ring: ring.FDDI(100e6)},
			{Name: "c", Protocol: topology.Standard8025, Ring: ring.IEEE8025(16e6)},
		},
		Bridges: []topology.Bridge{
			{A: "a", B: "b", Latency: 100e-6},
			{A: "b", B: "c", Latency: 100e-6},
		},
		Flows: []topology.Flow{
			{Name: "cross", Src: "a", Dst: "c", Period: 100e-3, LengthBits: 4096},
			{Name: "feed", Src: "b", Dst: "c", Period: 50e-3, LengthBits: 2048},
			{Name: "local", Src: "b", Dst: "b", Period: 20e-3, LengthBits: 1024},
		},
	}
}

// TestTopologySimSingleRingBitIdentical pins the refactor's core promise:
// a 1-node topology run is bit-identical to the standalone single-ring
// simulator, for every protocol and both interference regimes.
func TestTopologySimSingleRingBitIdentical(t *testing.T) {
	flows := []topology.Flow{
		{Name: "s1", Src: "r", Dst: "r", Period: 10e-3, LengthBits: 2048},
		{Name: "s2", Src: "r", Dst: "r", Period: 25e-3, LengthBits: 4096},
		{Name: "s3", Src: "r", Dst: "r", Period: 100e-3, LengthBits: 8192},
	}
	for _, proto := range topology.Protocols() {
		for _, saturated := range []bool{false, true} {
			topo := topology.Topology{
				Nodes: []topology.Node{{Name: "r", Protocol: proto, Ring: proto.PlantPreset().New(16e6)}},
				Flows: flows,
			}
			got, err := TopologySim{Topology: topo, AsyncSaturated: saturated}.Run()
			if err != nil {
				t.Fatalf("%s saturated=%v: %v", proto, saturated, err)
			}

			canon := topo.Canonicalize()
			sets, _, err := core.RingSets(canon)
			if err != nil {
				t.Fatal(err)
			}
			var want Result
			switch a := core.AnalyzerForNode(canon.Nodes[0], len(sets[0])).(type) {
			case core.PDP:
				w, err := NewWorkload(sets[0], a.Net.Stations, PhasingSynchronized, nil)
				if err != nil {
					t.Fatal(err)
				}
				want, err = PDPSim{
					Net: a.Net, Frame: a.Frame, Variant: a.Variant,
					Workload: w, AsyncSaturated: saturated,
				}.Run()
				if err != nil {
					t.Fatal(err)
				}
			case core.TTP:
				w, err := NewWorkload(sets[0], a.Net.Stations, PhasingSynchronized, nil)
				if err != nil {
					t.Fatal(err)
				}
				direct, err := NewTTPSimFromAnalysis(a, sets[0], w)
				if err != nil {
					t.Fatal(err)
				}
				direct.AsyncSaturated = saturated
				want, err = direct.Run()
				if err != nil {
					t.Fatal(err)
				}
			}
			if !reflect.DeepEqual(got.Rings[0].Result, want) {
				t.Errorf("%s saturated=%v: topology ring result differs from standalone run:\n got  %+v\n want %+v",
					proto, saturated, got.Rings[0].Result, want)
			}
			// The local flows' end-to-end stats coincide with the station
			// stats of the single ring.
			for i, f := range got.Flows {
				st := want.Stations[i]
				if f.Completed != st.Completed || f.Missed != st.Missed ||
					f.MaxResponse != st.MaxResponse || f.MaxLateness != st.MaxLateness {
					t.Errorf("%s saturated=%v: flow %q stats %+v differ from station %+v",
						proto, saturated, f.Flow.Name, f, st)
				}
			}
		}
	}
}

func TestTopologySimBridgedLineMeetsBounds(t *testing.T) {
	topo := simLineTopology()
	rep, err := core.AnalyzeTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Schedulable {
		t.Fatal("fixture must be analytically schedulable")
	}
	res, err := TopologySim{Topology: topo, AsyncSaturated: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MissedAny() {
		t.Fatalf("analysis-guaranteed topology missed deadlines: misses=%d drops=%d",
			res.DeadlineMisses, res.Drops)
	}
	if len(res.Rings) != 3 || len(res.Flows) != 3 || len(res.Bridges) != 4 {
		t.Fatalf("%d rings, %d flows, %d bridge directions", len(res.Rings), len(res.Flows), len(res.Bridges))
	}
	// Every flow delivers repeatedly and its observed worst response stays
	// within the analytical end-to-end bound.
	for i, f := range res.Flows {
		if f.Completed < 10 {
			t.Errorf("flow %q completed only %d messages", f.Flow.Name, f.Completed)
		}
		bound := rep.Flows[i].Bound
		if f.MaxResponse > bound {
			t.Errorf("flow %q max response %v exceeds analytical bound %v", f.Flow.Name, f.MaxResponse, bound)
		}
		if !reflect.DeepEqual(f.Path, rep.Flows[i].Path) {
			t.Errorf("flow %q path %v differs from analysis %v", f.Flow.Name, f.Path, rep.Flows[i].Path)
		}
	}
	// The cross flow really crossed both bridges: the a→b direction
	// forwarded one message per period over the horizon.
	var ab BridgeSimResult
	for _, b := range res.Bridges {
		if b.From == "a" && b.To == "b" {
			ab = b
		}
	}
	if ab.Forwarded == 0 || ab.Dropped != 0 {
		t.Errorf("bridge a→b: %+v", ab)
	}
	if ab.MaxBacklogBits < 4096 {
		t.Errorf("bridge a→b backlog high-water %v never held a full message", ab.MaxBacklogBits)
	}
}

func TestTopologySimBufferDrops(t *testing.T) {
	topo := simLineTopology()
	topo.Bridges[0].BufferBits = 1 // cannot hold even one message
	res, err := TopologySim{Topology: topo}.Run()
	if err != nil {
		t.Fatal(err)
	}
	var cross FlowSimResult
	for _, f := range res.Flows {
		if f.Flow.Name == "cross" {
			cross = f
		}
	}
	if cross.Dropped == 0 || cross.Completed != 0 {
		t.Errorf("cross flow through a full bridge: %+v", cross)
	}
	if res.Drops != cross.Dropped {
		t.Errorf("topology drops %d != cross drops %d", res.Drops, cross.Dropped)
	}
	// The other flows are unaffected.
	for _, f := range res.Flows {
		if f.Flow.Name != "cross" && (f.Missed > 0 || f.Dropped > 0 || f.Completed == 0) {
			t.Errorf("flow %q collateral damage: %+v", f.Flow.Name, f)
		}
	}
}

func TestTopologySimValidates(t *testing.T) {
	if _, err := (TopologySim{}).Run(); err == nil {
		t.Error("empty topology accepted")
	}
	topo := simLineTopology()
	topo.Flows[0].Period = math.NaN()
	if _, err := (TopologySim{Topology: topo}).Run(); err == nil {
		t.Error("NaN period accepted")
	}
}
