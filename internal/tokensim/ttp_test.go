package tokensim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/frame"
	"ringsched/internal/message"
	"ringsched/internal/ring"
)

// ttpTinyPlant: the canonical tiny plant at 2 stations, Θ = 4 µs, hop 2 µs.
func ttpTinyPlant() ring.Config { return ring.Tiny(2) }

func ttpTinySim(bits float64, alloc float64) TTPSim {
	w, err := NewWorkload(message.Set{{Name: "s", Period: 1, LengthBits: bits}},
		2, PhasingSynchronized, nil)
	if err != nil {
		panic(err)
	}
	return TTPSim{
		Net:         ttpTinyPlant(),
		SyncFrame:   frame.Spec{InfoBits: 8, OvhdBits: 2},
		AsyncFrame:  frame.Spec{InfoBits: 8, OvhdBits: 2},
		TTRT:        100e-6,
		Allocations: []float64{alloc},
		Workload:    w,
		Horizon:     0.01,
	}
}

func TestTTPSimHandTiming(t *testing.T) {
	// 36 payload bits, allocation 20 µs per visit with 2 µs frame
	// overhead ⇒ 18 µs payload per visit ⇒ two visits. First visit at
	// t=0 transmits 20 µs; token tours (2 hops × 2 µs + 0 at empty
	// station); second visit at t=24 µs finishes the remaining 18 bits
	// at t=44 µs.
	res, err := ttpTinySim(36, 20e-6).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", res.DeadlineMisses)
	}
	if got := res.Stations[0].MaxResponse; math.Abs(got-44e-6) > 1e-12 {
		t.Errorf("response = %v, want 44us", got)
	}
}

func TestTTPSimSyncBudgetEnforced(t *testing.T) {
	// Allocation below one frame overhead: the station can never send.
	sim := ttpTinySim(8, 1e-6)
	// Short period so missed deadlines fall inside the horizon.
	sim.Workload.Streams[0].Period = 1e-3
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncTime != 0 {
		t.Errorf("sync time = %v, want 0 (budget below frame overhead)", res.SyncTime)
	}
	if res.DeadlineMisses == 0 {
		t.Error("starved stream should miss its deadline")
	}
}

func TestTTPSimIdleRotationIsTheta(t *testing.T) {
	// With no traffic at all, the token rotates in exactly Θ.
	sim := ttpTinySim(1, 20e-6)
	sim.Workload.Offsets[0] = 5e-3 // first arrival late in the run
	sim.Horizon = 4e-3             // ends before the arrival
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	theta := ttpTinyPlant().Theta()
	if math.Abs(res.RotationMean-theta) > 1e-12 {
		t.Errorf("idle rotation = %v, want Θ = %v", res.RotationMean, theta)
	}
}

func TestTTPSimAsyncOnlyWhenEarly(t *testing.T) {
	// Saturated async on an otherwise idle ring: every rotation absorbs
	// the earliness, so the rotation time approaches TTRT but never
	// exceeds 2·TTRT.
	sim := ttpTinySim(8, 20e-6)
	sim.AsyncSaturated = true
	sim.Horizon = 0.05
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AsyncTime == 0 {
		t.Fatal("async never transmitted")
	}
	if res.RotationMax > 2*sim.TTRT+1e-12 {
		t.Errorf("rotation max %v exceeded 2·TTRT %v", res.RotationMax, 2*sim.TTRT)
	}
	// Sevcik–Johnson: the average rotation stays at or below TTRT, and
	// saturation keeps it well above the idle rotation Θ.
	if res.RotationMean > sim.TTRT+1e-12 {
		t.Errorf("rotation mean %v exceeded TTRT %v", res.RotationMean, sim.TTRT)
	}
	if res.RotationMean < 0.3*sim.TTRT {
		t.Errorf("rotation mean %v implausibly low under saturation", res.RotationMean)
	}
}

func TestTTPSimValidation(t *testing.T) {
	base := ttpTinySim(8, 20e-6)

	bad := base
	bad.TTRT = 0
	if _, err := bad.Run(); !errors.Is(err, ErrBadTTRT) {
		t.Errorf("zero TTRT: %v, want ErrBadTTRT", err)
	}
	bad = base
	bad.Allocations = nil
	if _, err := bad.Run(); !errors.Is(err, ErrBadAllocations) {
		t.Errorf("missing allocations: %v, want ErrBadAllocations", err)
	}
	bad = base
	bad.Net.Stations = 0
	if _, err := bad.Run(); err == nil {
		t.Error("bad plant accepted")
	}
	bad = base
	bad.Horizon = -2
	if _, err := bad.Run(); !errors.Is(err, ErrBadHorizon) {
		t.Errorf("negative horizon: %v, want ErrBadHorizon", err)
	}
	bad = base
	bad.SyncFrame.InfoBits = 0
	if _, err := bad.Run(); err == nil {
		t.Error("bad sync frame accepted")
	}
}

func TestNewTTPSimFromAnalysisWiring(t *testing.T) {
	set := message.Set{
		{Name: "a", Period: 20e-3, LengthBits: 50_000},
		{Name: "b", Period: 60e-3, LengthBits: 200_000},
	}
	tt := core.NewTTP(100e6)
	tt.Net = tt.Net.WithStations(2)
	w, err := NewWorkload(set, 2, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewTTPSimFromAnalysis(tt, set, w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tt.Report(set)
	if err != nil {
		t.Fatal(err)
	}
	if sim.TTRT != rep.TTRT {
		t.Errorf("sim TTRT = %v, want %v", sim.TTRT, rep.TTRT)
	}
	for i := range rep.Streams {
		if sim.Allocations[i] != rep.Streams[i].Allocation {
			t.Errorf("allocation %d = %v, want %v", i, sim.Allocations[i], rep.Streams[i].Allocation)
		}
	}
	if _, err := NewTTPSimFromAnalysis(tt, nil, w); err == nil {
		t.Error("nil set accepted")
	}
}

func TestTTPSimAgreesWithTheorem51(t *testing.T) {
	// Sets guaranteed by the analysis (at 95 % of saturation) never miss
	// under worst-case phasing and saturated async interference, and
	// rotations respect Johnson's 2·TTRT bound.
	rng := rand.New(rand.NewSource(9))
	gen := message.Generator{Streams: 12, MeanPeriod: 50e-3, PeriodRatio: 8}
	for _, bw := range []float64{20e6, 100e6} {
		set, err := gen.Draw(rng)
		if err != nil {
			t.Fatal(err)
		}
		tt := core.NewTTP(bw)
		tt.Net = tt.Net.WithStations(12)
		sat, err := breakdown.Saturate(set, tt, bw, breakdown.SaturateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !sat.Feasible {
			t.Fatalf("setup: infeasible at %g bps", bw)
		}
		test := sat.Set.Scale(0.95)
		w, err := NewWorkload(test, 12, PhasingSynchronized, nil)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewTTPSimFromAnalysis(tt, test, w)
		if err != nil {
			t.Fatal(err)
		}
		sim.AsyncSaturated = true
		sim.Horizon = 2
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.DeadlineMisses != 0 {
			t.Errorf("%g bps: %d misses for an analytically guaranteed set", bw, res.DeadlineMisses)
		}
		if res.RotationMax > 2*sim.TTRT+1e-9 {
			t.Errorf("%g bps: rotation %v exceeded 2·TTRT %v", bw, res.RotationMax, 2*sim.TTRT)
		}
	}
}

func TestTTPSimPerStationOverrunBudgetHolds(t *testing.T) {
	// The seed that produces a deadline miss at 95 % of the eq.-(11)
	// saturation (aggregate async overrun beyond θ's single frame; see
	// EXPERIMENTS.md VAL-SIM) must be clean when the analysis budgets one
	// overrun per station.
	const n, bw = 20, 100e6
	gen := message.Generator{Streams: n, MeanPeriod: 100e-3, PeriodRatio: 10}
	set, err := gen.Draw(rand.New(rand.NewSource(1995)))
	if err != nil {
		t.Fatal(err)
	}
	ttp := core.NewTTP(bw)
	ttp.Net = ttp.Net.WithStations(n)
	ttp.Overrun = core.OverrunPerStation
	sat, err := breakdown.Saturate(set, ttp, bw, breakdown.SaturateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sat.Feasible {
		t.Fatal("setup: infeasible")
	}
	test := sat.Set.Scale(0.95)
	w, err := NewWorkload(test, n, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewTTPSimFromAnalysis(ttp, test, w)
	if err != nil {
		t.Fatal(err)
	}
	sim.AsyncSaturated = true
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Errorf("per-station overrun budget still missed %d deadlines", res.DeadlineMisses)
	}

	// And the single-frame budget on the same seed does miss at 95 % —
	// the regression that motivated the option.
	classic := core.NewTTP(bw)
	classic.Net = classic.Net.WithStations(n)
	satC, err := breakdown.Saturate(set, classic, bw, breakdown.SaturateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	testC := satC.Set.Scale(0.95)
	wC, err := NewWorkload(testC, n, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	simC, err := NewTTPSimFromAnalysis(classic, testC, wC)
	if err != nil {
		t.Fatal(err)
	}
	simC.AsyncSaturated = true
	resC, err := simC.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resC.DeadlineMisses == 0 {
		t.Log("note: the classic budget no longer misses on this seed; boundary case moved")
	}
}

func TestTTPSimResponsesWithinAnalyticBound(t *testing.T) {
	// Simulated worst responses must respect the classic q·TTRT bound
	// for sets comfortably inside the guarantee region.
	const n, bw = 10, 100e6
	gen := message.Generator{Streams: n, MeanPeriod: 50e-3, PeriodRatio: 5}
	set, err := gen.Draw(rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	ttp := core.NewTTP(bw)
	ttp.Net = ttp.Net.WithStations(n)
	sat, err := breakdown.Saturate(set, ttp, bw, breakdown.SaturateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	test := sat.Set.Scale(0.8)
	rep, err := ttp.Report(test)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(test, n, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewTTPSimFromAnalysis(ttp, test, w)
	if err != nil {
		t.Fatal(err)
	}
	sim.AsyncSaturated = true
	sim.Horizon = 2
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, sr := range res.Stations {
		if sr.MaxResponse > rep.Streams[i].WorstCaseResponse+1e-9 {
			t.Errorf("station %d: simulated response %v exceeds analytic bound %v",
				i, sr.MaxResponse, rep.Streams[i].WorstCaseResponse)
		}
	}
}

func TestTTPSimOverAllocationMisses(t *testing.T) {
	// Slash the analyzed allocations: deadlines must start failing.
	set := message.Set{
		{Name: "a", Period: 10e-3, LengthBits: 100_000},
		{Name: "b", Period: 10e-3, LengthBits: 100_000},
	}
	tt := core.NewTTP(100e6)
	tt.Net = tt.Net.WithStations(2)
	w, err := NewWorkload(set, 2, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewTTPSimFromAnalysis(tt, set, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sim.Allocations {
		sim.Allocations[i] /= 4
	}
	// Saturated async pins the rotation near TTRT, so the quartered
	// allocations can no longer cover a period's payload.
	sim.AsyncSaturated = true
	sim.Horizon = 0.5
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses == 0 {
		t.Error("quartered allocations should cause misses")
	}
}

func TestTTPSimMultipleStationsShareRotation(t *testing.T) {
	// Two stations with equal allocations: both meet deadlines, rotation
	// grows by both transmissions.
	set := message.Set{
		{Name: "a", Period: 1e-3, LengthBits: 80},
		{Name: "b", Period: 1e-3, LengthBits: 80},
	}
	w, err := NewWorkload(set, 2, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim := TTPSim{
		Net:         ttpTinyPlant(),
		SyncFrame:   frame.Spec{InfoBits: 8, OvhdBits: 2},
		AsyncFrame:  frame.Spec{InfoBits: 8, OvhdBits: 2},
		TTRT:        200e-6,
		Allocations: []float64{110e-6, 110e-6},
		Workload:    w,
		Horizon:     0.02,
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses = %d", res.DeadlineMisses)
	}
	if res.Stations[0].Completed == 0 || res.Stations[1].Completed == 0 {
		t.Error("both stations should complete messages")
	}
}
