package tokensim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ringsched/internal/core"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/sim"
	"ringsched/internal/stats"
	"ringsched/internal/topology"
	"ringsched/internal/trace"
)

// ErrInfeasibleAllocation reports that a TTP ring in the topology has no
// finite synchronous allocation (a stream whose deadline admits fewer than
// two token visits), so no simulator configuration realizes the analysis.
var ErrInfeasibleAllocation = errors.New("tokensim: topology analysis yields no finite synchronous allocation")

// TopologySim composes the per-ring PDP/TTP simulators through
// store-and-forward bridge queues into one multi-ring simulation on a
// single shared event engine. Each ring runs its exact single-ring
// simulator — the same event chains, the same floating-point arithmetic —
// so a 1-node topology reproduces the standalone PDPSim/TTPSim run bit for
// bit. Flows are released at their source ring with synchronized phasing
// (the critical instant); a message completing on a non-final ring enters
// the bridge toward its next hop, is serialized at the bridge's forwarding
// rate behind earlier arrivals, delayed by the fixed forwarding latency,
// and re-injected whole into the next ring's queue (store-and-forward).
// Deadlines are end-to-end: every hop of a message checks against its
// source arrival plus the flow period.
//
// TTP rings take their TTRT and synchronous allocations from the composed
// analysis (core.AnalyzeTopology), so the simulation validates exactly the
// configuration the analysis guarantees — including the deadline
// partitioning that sizes allocations for multi-hop flows.
type TopologySim struct {
	// Topology is the ring graph to simulate; it is canonicalized and
	// validated.
	Topology topology.Topology
	// AsyncSaturated keeps worst-case asynchronous interference active on
	// every ring, as in the single-ring simulators.
	AsyncSaturated bool
	// TokenPass selects the PDP token-circulation cost model; zero value
	// means PassMeasured.
	TokenPass TokenPassModel
	// Horizon is the simulated duration; zero picks a default long enough
	// for steady state (20 periods of the slowest flow).
	Horizon float64
	// MaxEvents bounds the discrete events fired across all rings; 0 means
	// unlimited.
	MaxEvents int
	// Progress, when non-nil, observes event-loop advancement.
	Progress progress.Progress
}

// RingSimResult is one ring's outcome inside a topology run.
type RingSimResult struct {
	// Name and Protocol echo the ring node.
	Name     string
	Protocol topology.Protocol
	// Result is the ring's standalone-format simulation outcome; its
	// station deadlines are end-to-end for bridged flows.
	Result Result
}

// BridgeSimResult is one direction of one bridge.
type BridgeSimResult struct {
	// From and To name the rings this direction forwards between.
	From, To string
	// RateBPS and Latency echo the resolved forwarding parameters.
	RateBPS float64
	Latency float64
	// Forwarded and Dropped count messages accepted and rejected (buffer
	// overflow) by this direction.
	Forwarded int
	Dropped   int
	// MaxBacklogBits is the deepest store-and-forward backlog observed.
	MaxBacklogBits float64
	// BusyTime is the total serialization time spent forwarding.
	BusyTime float64
}

// FlowSimResult is one flow's end-to-end outcome.
type FlowSimResult struct {
	// Flow echoes the canonical flow.
	Flow topology.Flow
	// Path lists the ring names the flow traverses, source first.
	Path []string
	// Completed counts messages delivered at the final ring within the
	// end-to-end deadline; Missed counts late deliveries; Dropped counts
	// messages lost to bridge buffer overflow.
	Completed int
	Missed    int
	Dropped   int
	// MeanResponse and MaxResponse summarize end-to-end response times
	// (final completion − source arrival) of delivered messages.
	MeanResponse float64
	MaxResponse  float64
	// MaxLateness is the largest (completion − deadline) observed; zero or
	// negative means every delivery met its deadline.
	MaxLateness float64
}

// TopologyResult is the outcome of one multi-ring simulation.
type TopologyResult struct {
	// Horizon is the simulated duration in seconds.
	Horizon float64
	// Rings holds per-ring outcomes in canonical ring order.
	Rings []RingSimResult
	// Bridges holds per-direction bridge outcomes for every bridge, A→B
	// then B→A, in canonical bridge order.
	Bridges []BridgeSimResult
	// Flows holds per-flow end-to-end outcomes in canonical flow order.
	Flows []FlowSimResult
	// DeadlineMisses totals late end-to-end deliveries across flows;
	// Drops totals bridge buffer losses.
	DeadlineMisses int
	Drops          int
}

// MissedAny reports whether any message was delivered late or lost.
func (r TopologyResult) MissedAny() bool { return r.DeadlineMisses > 0 || r.Drops > 0 }

// ringRun is the per-ring simulator surface the topology composition
// drives; pdpRun and ttpRun implement it.
type ringRun interface {
	start() error
	collect() Result
	inject(idx int, msg pendingMessage)
	setDone(fn func(station int, msg pendingMessage, at float64))
	setFlow(idx, flow int)
}

// bridgeKey addresses one direction of one bridge.
type bridgeKey struct {
	bridge  int
	forward bool // true when forwarding from Bridges[bridge].A to .B
}

// bridgeDirState is the store-and-forward queue of one bridge direction.
type bridgeDirState struct {
	rate       float64
	latency    float64
	buffer     float64
	lastFinish float64
	backlog    float64
	maxBacklog float64
	busy       float64
	forwarded  int
	dropped    int
}

// forward serializes bits through the queue starting no earlier than now,
// invoking deliver at the post-latency delivery instant. It reports false
// (and counts a drop) when the buffer cannot hold the message.
func (b *bridgeDirState) forward(eng *sim.Engine, now, bits float64, deliver func(at float64)) bool {
	if b.buffer > 0 && b.backlog+bits > b.buffer {
		b.dropped++
		return false
	}
	b.backlog += bits
	if b.backlog > b.maxBacklog {
		b.maxBacklog = b.backlog
	}
	start := math.Max(now, b.lastFinish)
	finish := start + bits/b.rate
	b.lastFinish = finish
	b.busy += bits / b.rate
	b.forwarded++
	_, _ = eng.At(finish, func() { b.backlog -= bits })
	at := finish + b.latency
	_, _ = eng.At(at, func() { deliver(at) })
	return true
}

// flowState accumulates one flow's end-to-end statistics.
type flowState struct {
	completed   int
	missed      int
	dropped     int
	response    stats.Running
	maxLateness float64
}

// topoRun is the mutable state of one topology simulation.
type topoRun struct {
	cfg     TopologySim
	topo    topology.Topology
	engine  *sim.Engine
	horizon float64

	runs    []ringRun
	routes  [][]int
	station []map[string]int // ring index → flow name → station index
	bridges map[bridgeKey]*bridgeDirState
	flows   []flowState
}

// Run executes the simulation. It is the uncancelable convenience wrapper
// around RunContext.
func (c TopologySim) Run() (TopologyResult, error) {
	return c.RunContext(context.Background())
}

// RunContext is Run with cancellation.
func (c TopologySim) RunContext(ctx context.Context) (TopologyResult, error) {
	canon := c.Topology.Canonicalize()
	if err := canon.Validate(); err != nil {
		return TopologyResult{}, err
	}
	rep, err := core.AnalyzeTopology(canon)
	if err != nil {
		return TopologyResult{}, err
	}
	sets, routes, err := core.RingSets(canon)
	if err != nil {
		return TopologyResult{}, err
	}
	horizon := c.Horizon
	if horizon == 0 {
		all := make(message.Set, len(canon.Flows))
		for i, f := range canon.Flows {
			all[i] = message.Stream{Name: f.Name, Period: f.Period, LengthBits: f.LengthBits}
		}
		horizon = horizonFor(all, 20)
	}
	if horizon <= 0 || math.IsInf(horizon, 0) || math.IsNaN(horizon) {
		return TopologyResult{}, ErrBadHorizon
	}

	r := &topoRun{
		cfg:     c,
		topo:    canon,
		engine:  &sim.Engine{},
		horizon: horizon,
		runs:    make([]ringRun, len(canon.Nodes)),
		routes:  routes,
		station: make([]map[string]int, len(canon.Nodes)),
		bridges: map[bridgeKey]*bridgeDirState{},
		flows:   make([]flowState, len(canon.Flows)),
	}

	flowSrc := make(map[string]string, len(canon.Flows))
	for _, f := range canon.Flows {
		flowSrc[f.Name] = f.Src
	}
	for i, n := range canon.Nodes {
		r.station[i] = make(map[string]int, len(sets[i]))
		for j, s := range sets[i] {
			r.station[i][s.Name] = j
		}
		if len(sets[i]) == 0 {
			continue // a flowless ring contributes no events
		}
		// Local flows release at time 0 (the critical instant); transit
		// and sink streams never self-release — their messages arrive
		// only by bridge hand-off.
		w := Workload{Streams: sets[i], Offsets: make([]float64, len(sets[i]))}
		for j, s := range sets[i] {
			if flowSrc[s.Name] != n.Name {
				w.Offsets[j] = math.Inf(1)
			}
		}
		run, err := r.newRingRun(n, rep.Rings[i], w)
		if err != nil {
			return TopologyResult{}, fmt.Errorf("ring %q: %w", n.Name, err)
		}
		r.runs[i] = run
	}

	// Wire flow indices and the forwarding hooks.
	for fi, f := range canon.Flows {
		for _, ri := range routes[fi] {
			r.runs[ri].setFlow(r.station[ri][f.Name], fi)
		}
	}
	for i, run := range r.runs {
		if run == nil {
			continue
		}
		ri := i
		run.setDone(func(_ int, msg pendingMessage, at float64) {
			r.deliver(ri, msg, at)
		})
	}
	for bi := range canon.Bridges {
		for _, fwd := range []bool{true, false} {
			r.bridges[bridgeKey{bridge: bi, forward: fwd}] = &bridgeDirState{
				rate:    canon.BridgeRate(bi),
				latency: canon.Bridges[bi].Latency,
				buffer:  canon.Bridges[bi].BufferBits,
			}
		}
	}

	ctx, sp := trace.Start(ctx, "sim.topology")
	defer sp.End()
	sp.SetAttr("rings", len(canon.Nodes))
	sp.SetAttr("flows", len(canon.Flows))
	sp.SetAttr("horizonSec", horizon)

	for i, run := range r.runs {
		if run == nil {
			continue
		}
		if err := run.start(); err != nil {
			sp.SetError(err)
			return TopologyResult{}, fmt.Errorf("ring %q: %w", canon.Nodes[i].Name, err)
		}
	}
	if err := r.engine.RunUntilContext(ctx, horizon, runLoopOptions(c.MaxEvents, c.Progress)); err != nil {
		sp.SetError(err)
		return TopologyResult{}, err
	}

	res := r.collect()
	sp.SetAttr("misses", res.DeadlineMisses)
	sp.SetAttr("drops", res.Drops)
	return res, nil
}

// newRingRun builds ring n's simulator run on the shared engine, configured
// exactly as the analysis configures its analyzer (same plant, same frame
// format, same station bump) so the 1-node case is the standalone run.
func (r *topoRun) newRingRun(n topology.Node, verdict core.TopologyRingVerdict, w Workload) (ringRun, error) {
	switch a := core.AnalyzerForNode(n, len(w.Streams)).(type) {
	case core.PDP:
		cfg := PDPSim{
			Net:            a.Net,
			Frame:          a.Frame,
			Variant:        a.Variant,
			Workload:       w,
			AsyncSaturated: r.cfg.AsyncSaturated,
			Horizon:        r.horizon,
			TokenPass:      r.cfg.TokenPass,
		}
		if _, err := cfg.validate(); err != nil {
			return nil, err
		}
		return newPDPRun(cfg, r.engine, r.horizon), nil
	case core.TTP:
		alloc := make([]float64, len(verdict.TTP.Streams))
		for j, sr := range verdict.TTP.Streams {
			if math.IsInf(sr.Allocation, 0) || math.IsNaN(sr.Allocation) {
				return nil, fmt.Errorf("%w: stream %q", ErrInfeasibleAllocation, sr.Stream.Name)
			}
			alloc[j] = sr.Allocation
		}
		cfg := TTPSim{
			Net:            a.Net,
			SyncFrame:      a.SyncFrame,
			AsyncFrame:     a.AsyncFrame,
			TTRT:           verdict.TTP.TTRT,
			Allocations:    alloc,
			Workload:       w,
			AsyncSaturated: r.cfg.AsyncSaturated,
			Horizon:        r.horizon,
		}
		if _, err := cfg.validate(); err != nil {
			return nil, err
		}
		return newTTPRun(cfg, r.engine, r.horizon), nil
	default:
		return nil, fmt.Errorf("%w: %q", topology.ErrBadProtocol, n.Protocol)
	}
}

// deliver routes a message completed on ring ri: record the end-to-end
// outcome at the final ring, or forward through the next bridge.
func (r *topoRun) deliver(ri int, msg pendingMessage, at float64) {
	f := r.topo.Flows[msg.flow]
	path := r.routes[msg.flow]
	hop := -1
	for h, rr := range path {
		if rr == ri {
			hop = h
			break
		}
	}
	if hop == len(path)-1 {
		fs := &r.flows[msg.flow]
		fs.response.Add(at - msg.source)
		lateness := at - msg.deadline
		if lateness > fs.maxLateness {
			fs.maxLateness = lateness
		}
		if lateness > 0 {
			fs.missed++
		} else {
			fs.completed++
		}
		return
	}
	next := path[hop+1]
	from, to := r.topo.Nodes[ri].Name, r.topo.Nodes[next].Name
	bi := r.topo.BridgeIndex(from, to)
	dir := r.bridges[bridgeKey{bridge: bi, forward: r.topo.Bridges[bi].A == from}]
	ok := dir.forward(r.engine, at, f.LengthBits, func(deliveredAt float64) {
		r.runs[next].inject(r.station[next][f.Name], pendingMessage{
			arrival:       deliveredAt,
			deadline:      msg.deadline,
			remainingBits: f.LengthBits,
			flow:          msg.flow,
			source:        msg.source,
		})
	})
	if !ok {
		r.flows[msg.flow].dropped++
	}
}

// collect summarizes the run after the event loop has drained.
func (r *topoRun) collect() TopologyResult {
	res := TopologyResult{Horizon: r.horizon}
	for i, n := range r.topo.Nodes {
		rr := RingSimResult{Name: n.Name, Protocol: n.Protocol}
		if r.runs[i] != nil {
			rr.Result = r.runs[i].collect()
		} else {
			rr.Result = Result{Protocol: protocolLabel(n.Protocol), Horizon: r.horizon, IdleTime: r.horizon}
		}
		res.Rings = append(res.Rings, rr)
	}
	for bi, b := range r.topo.Bridges {
		for _, fwd := range []bool{true, false} {
			dir := r.bridges[bridgeKey{bridge: bi, forward: fwd}]
			from, to := b.A, b.B
			if !fwd {
				from, to = b.B, b.A
			}
			res.Bridges = append(res.Bridges, BridgeSimResult{
				From: from, To: to,
				RateBPS: dir.rate, Latency: dir.latency,
				Forwarded: dir.forwarded, Dropped: dir.dropped,
				MaxBacklogBits: dir.maxBacklog, BusyTime: dir.busy,
			})
		}
	}
	for fi, f := range r.topo.Flows {
		fs := &r.flows[fi]
		path := make([]string, len(r.routes[fi]))
		for h, ri := range r.routes[fi] {
			path[h] = r.topo.Nodes[ri].Name
		}
		res.Flows = append(res.Flows, FlowSimResult{
			Flow:         f,
			Path:         path,
			Completed:    fs.completed,
			Missed:       fs.missed,
			Dropped:      fs.dropped,
			MeanResponse: fs.response.Mean(),
			MaxResponse:  fs.response.Max(),
			MaxLateness:  fs.maxLateness,
		})
		res.DeadlineMisses += fs.missed
		res.Drops += fs.dropped
	}
	return res
}

// protocolLabel matches the Protocol string the per-ring simulators report.
func protocolLabel(p topology.Protocol) string {
	switch p {
	case topology.Standard8025:
		return core.Standard8025.String()
	case topology.Modified8025:
		return core.Modified8025.String()
	default:
		return "FDDI"
	}
}
