package tokensim

import (
	"context"
	"errors"
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/faults"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/sim"
)

// sweepFaults is an everything-on model for exercising the fault branches
// of the RunContext paths.
func sweepFaults() *Faults {
	return &Faults{
		TokenLossProb: 0.2,
		Recovery:      faults.Recovery{Fixed: 20e-6},
		Channel:       faults.Channel{Kind: faults.ChannelBernoulli, CorruptProb: 0.2},
		Crash:         faults.Crash{Rate: 50, MeanDowntime: 1e-3, Bypass: 5e-6},
		Seed:          9,
	}
}

// busyPDPWorkload releases frequently enough to generate thousands of
// events over the horizon.
func busyPDPWorkload() Workload {
	w, err := NewWorkload(message.Set{{Name: "busy", Period: 100e-6, LengthBits: 8}},
		4, PhasingSynchronized, nil)
	if err != nil {
		panic(err)
	}
	return w
}

func TestPDPSimRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: busyPDPWorkload(),
		Horizon:  0.1,
	}.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPDPSimMaxEvents(t *testing.T) {
	_, err := PDPSim{
		Net:       tinyPlant(),
		Frame:     tinyFrame(),
		Variant:   core.Modified8025,
		Workload:  busyPDPWorkload(),
		Horizon:   0.1,
		MaxEvents: 50,
	}.RunContext(context.Background())
	if !errors.Is(err, sim.ErrMaxEvents) {
		t.Fatalf("err = %v, want sim.ErrMaxEvents", err)
	}
}

func TestPDPSimProgressObserved(t *testing.T) {
	var counter progress.Counter
	res, err := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: busyPDPWorkload(),
		Horizon:  0.1,
		Progress: &counter,
	}.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Horizon != 0.1 {
		t.Errorf("horizon = %v, want 0.1", res.Horizon)
	}
	if counter.SimEvents() == 0 {
		t.Error("progress observer saw no simulator advance")
	}
}

func TestTTPSimRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ttpTinySim(36, 20e-6).RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTTPSimMaxEventsAndProgress(t *testing.T) {
	var counter progress.Counter
	s := ttpTinySim(36, 20e-6)
	s.Horizon = 1
	s.MaxEvents = 20
	s.Progress = &counter
	if _, err := s.RunContext(context.Background()); !errors.Is(err, sim.ErrMaxEvents) {
		t.Fatalf("err = %v, want sim.ErrMaxEvents", err)
	}
	if counter.SimEvents() == 0 {
		t.Error("progress observer saw no simulator advance before the budget tripped")
	}
}

func TestReservationSimRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ReservationSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Workload: busyPDPWorkload(),
		Horizon:  0.1,
	}.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestReservationSimMaxEvents(t *testing.T) {
	_, err := ReservationSim{
		Net:       tinyPlant(),
		Frame:     tinyFrame(),
		Workload:  busyPDPWorkload(),
		Horizon:   0.1,
		MaxEvents: 50,
	}.RunContext(context.Background())
	if !errors.Is(err, sim.ErrMaxEvents) {
		t.Fatalf("err = %v, want sim.ErrMaxEvents", err)
	}
}

// The RunContext guards must hold with fault injection active: MaxEvents
// still trips, pre-canceled contexts still abort, and a full faulted run
// still completes and reports fault statistics.
func TestPDPSimMaxEventsWithFaults(t *testing.T) {
	_, err := PDPSim{
		Net: tinyPlant(), Frame: tinyFrame(), Variant: core.Modified8025,
		Workload: busyPDPWorkload(), Horizon: 0.1,
		Faults: sweepFaults(), MaxEvents: 50,
	}.RunContext(context.Background())
	if !errors.Is(err, sim.ErrMaxEvents) {
		t.Fatalf("err = %v, want sim.ErrMaxEvents", err)
	}
}

func TestTTPSimPreCanceledWithFaults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := ttpTinySim(36, 20e-6)
	s.Faults = sweepFaults()
	if _, err := s.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestReservationSimFaultedRunCompletes(t *testing.T) {
	var counter progress.Counter
	res, err := ReservationSim{
		Net: tinyPlant(), Frame: tinyFrame(),
		Workload: busyPDPWorkload(), Horizon: 0.05,
		Faults: sweepFaults(), Progress: &counter,
	}.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.TokenLosses == 0 && res.CorruptedFrames == 0 && res.Crashes == 0 {
		t.Error("everything-on fault model injected nothing")
	}
	if counter.SimEvents() == 0 {
		t.Error("progress observer saw no simulator advance")
	}
}

func TestReservationSimMaxEventsWithFaults(t *testing.T) {
	_, err := ReservationSim{
		Net: tinyPlant(), Frame: tinyFrame(),
		Workload: busyPDPWorkload(), Horizon: 0.1,
		Faults: sweepFaults(), MaxEvents: 50,
	}.RunContext(context.Background())
	if !errors.Is(err, sim.ErrMaxEvents) {
		t.Fatalf("err = %v, want sim.ErrMaxEvents", err)
	}
}
