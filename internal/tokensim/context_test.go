package tokensim

import (
	"context"
	"errors"
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/sim"
)

// busyPDPWorkload releases frequently enough to generate thousands of
// events over the horizon.
func busyPDPWorkload() Workload {
	w, err := NewWorkload(message.Set{{Name: "busy", Period: 100e-6, LengthBits: 8}},
		4, PhasingSynchronized, nil)
	if err != nil {
		panic(err)
	}
	return w
}

func TestPDPSimRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: busyPDPWorkload(),
		Horizon:  0.1,
	}.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPDPSimMaxEvents(t *testing.T) {
	_, err := PDPSim{
		Net:       tinyPlant(),
		Frame:     tinyFrame(),
		Variant:   core.Modified8025,
		Workload:  busyPDPWorkload(),
		Horizon:   0.1,
		MaxEvents: 50,
	}.RunContext(context.Background())
	if !errors.Is(err, sim.ErrMaxEvents) {
		t.Fatalf("err = %v, want sim.ErrMaxEvents", err)
	}
}

func TestPDPSimProgressObserved(t *testing.T) {
	var counter progress.Counter
	res, err := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: busyPDPWorkload(),
		Horizon:  0.1,
		Progress: &counter,
	}.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Horizon != 0.1 {
		t.Errorf("horizon = %v, want 0.1", res.Horizon)
	}
	if counter.SimEvents() == 0 {
		t.Error("progress observer saw no simulator advance")
	}
}

func TestTTPSimRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ttpTinySim(36, 20e-6).RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTTPSimMaxEventsAndProgress(t *testing.T) {
	var counter progress.Counter
	s := ttpTinySim(36, 20e-6)
	s.Horizon = 1
	s.MaxEvents = 20
	s.Progress = &counter
	if _, err := s.RunContext(context.Background()); !errors.Is(err, sim.ErrMaxEvents) {
		t.Fatalf("err = %v, want sim.ErrMaxEvents", err)
	}
	if counter.SimEvents() == 0 {
		t.Error("progress observer saw no simulator advance before the budget tripped")
	}
}

func TestReservationSimRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ReservationSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Workload: busyPDPWorkload(),
		Horizon:  0.1,
	}.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestReservationSimMaxEvents(t *testing.T) {
	_, err := ReservationSim{
		Net:       tinyPlant(),
		Frame:     tinyFrame(),
		Workload:  busyPDPWorkload(),
		Horizon:   0.1,
		MaxEvents: 50,
	}.RunContext(context.Background())
	if !errors.Is(err, sim.ErrMaxEvents) {
		t.Fatalf("err = %v, want sim.ErrMaxEvents", err)
	}
}
