package tokensim

import (
	"context"
	"errors"
	"math"

	"ringsched/internal/faults"
	"ringsched/internal/frame"
	"ringsched/internal/progress"
	"ringsched/internal/ring"
	"ringsched/internal/sim"
	"ringsched/internal/stats"
	"ringsched/internal/trace"
)

// ErrBadPriorityLevels reports an unusable priority-level count.
var ErrBadPriorityLevels = errors.New("tokensim: priority levels must be positive")

// ReservationSim is a faithful simulator of the IEEE 802.5 priority and
// reservation mechanism — the machinery the paper's PDP analysis abstracts
// into "the highest-priority pending frame transmits next, paying Θ/2 on
// average".
//
// Mechanics modeled:
//
//   - The free token carries a priority field P; a station may capture it
//     only with a pending frame of priority ≥ P.
//   - While a frame (or token) circulates, stations write their highest
//     pending priority into the reservation field R.
//   - The transmitter strips its frame after the header returns and issues
//     a new token at priority max(P, R); a station that raises the ring's
//     priority becomes a *stacking station* and is responsible for lowering
//     it again (the 802.5 Sx/Sr stack).
//   - The token holding timer admits one frame per capture (the paper's
//     rate-monotonic implementation).
//
// Unlike PDPSim, arbitration is decided by the actual token state, so a
// limited number of priority levels (IEEE 802.5 has 8) maps many streams
// onto one level and produces real priority inversion — the effect the
// EXT-PRIO experiment quantifies.
type ReservationSim struct {
	// Net is the ring plant.
	Net ring.Config
	// Frame is the shared frame format.
	Frame frame.Spec
	// Workload supplies the synchronous streams and their phasing;
	// stream i sits at station i.
	Workload Workload
	// PriorityLevels is the number of distinct ring priority levels
	// available to synchronous traffic (8 in IEEE 802.5). Streams are
	// assigned levels rate-monotonically; with fewer levels than streams,
	// several streams share a level and arbitration among them degrades
	// to position order. Zero means one level per stream (ideal).
	PriorityLevels int
	// AsyncSaturated keeps a lowest-priority asynchronous frame pending
	// at every station.
	AsyncSaturated bool
	// Horizon is the simulated duration; zero picks a default (20 periods
	// of the slowest stream).
	Horizon float64
	// Tracer, when non-nil, observes simulator events.
	Tracer Tracer
	// Faults, when non-nil, injects token-loss failures (charged when the
	// token is issued).
	Faults *Faults
	// MaxEvents bounds the discrete events fired by one run; 0 means
	// unlimited. Exceeding it aborts with sim.ErrMaxEvents.
	MaxEvents int
	// Progress, when non-nil, observes event-loop advancement.
	Progress progress.Progress
}

// resStation is one station's MAC state.
type resStation struct {
	// sync is nil for stations without a synchronous stream.
	sync *stationState
	// priority is the ring priority level of the station's synchronous
	// frames (higher number = higher priority).
	priority int
	// stack holds the 802.5 priority stack: pairs of (old, new) the
	// station pushed when it raised the ring priority.
	stack []stackedPriority
}

type stackedPriority struct {
	old int
	new int
}

// resRun is the mutable state of one run.
type resRun struct {
	cfg      ReservationSim
	engine   sim.Engine
	stations []*resStation
	horizon  float64

	// tokenPrio is the priority field of the circulating free token;
	// reservation is its reservation field.
	tokenPrio   int
	reservation int

	syncTime  float64
	asyncTime float64
	tokenTime float64
	passStats stats.Running

	// inj is the fault injector for this run; nil on a healthy ring.
	inj       *faults.Injector
	recovery  float64
	losses    int
	corrupted int
	// lastService is when the previous frame finished, for inter-service
	// gap statistics.
	lastService float64
	served      bool
	// inversions counts frames transmitted while a strictly
	// higher-priority frame was pending somewhere on the ring.
	inversions int
}

// asyncPriority is the ring priority of background traffic: level 0, below
// every synchronous level (1..L), matching 802.5 where the free token
// rests at priority 0. A station with nothing to send reports noPending.
const (
	asyncPriority = 0
	noPending     = -1
)

// Run executes the simulation. It is the uncancelable convenience wrapper
// around RunContext.
func (c ReservationSim) Run() (ReservationResult, error) {
	return c.RunContext(context.Background())
}

// RunContext is Run with cancellation: the event loop polls ctx
// periodically and aborts with ctx.Err() once it is canceled.
func (c ReservationSim) RunContext(ctx context.Context) (ReservationResult, error) {
	if err := c.Net.Validate(); err != nil {
		return ReservationResult{}, err
	}
	if err := c.Frame.Validate(); err != nil {
		return ReservationResult{}, err
	}
	if err := c.Workload.Streams.Validate(); err != nil {
		return ReservationResult{}, err
	}
	if err := c.Faults.Validate(); err != nil {
		return ReservationResult{}, err
	}
	if c.PriorityLevels < 0 {
		return ReservationResult{}, ErrBadPriorityLevels
	}
	horizon := c.Horizon
	if horizon == 0 {
		horizon = horizonFor(c.Workload.Streams, 20)
	}
	if horizon <= 0 {
		return ReservationResult{}, ErrBadHorizon
	}

	r := &resRun{cfg: c, horizon: horizon}
	r.inj = c.Faults.Injector(c.Net.Stations, c.Net.Theta(), horizon)
	r.stations = make([]*resStation, c.Net.Stations)
	for i := range r.stations {
		r.stations[i] = &resStation{}
	}
	for i, s := range c.Workload.Streams {
		r.stations[i].sync = &stationState{stream: s, nextArrival: c.Workload.Offsets[i]}
	}
	r.assignPriorities()

	ctx, sp := trace.Start(ctx, "sim.reservation")
	defer sp.End()
	sp.SetAttr("stations", c.Net.Stations)
	sp.SetAttr("levels", c.PriorityLevels)
	sp.SetAttr("horizonSec", horizon)

	// The free token starts at station 0 at priority 0.
	if _, err := r.engine.At(0, func() { r.tokenAt(0) }); err != nil {
		sp.SetError(err)
		return ReservationResult{}, err
	}
	if err := r.engine.RunUntilContext(ctx, horizon, runLoopOptions(c.MaxEvents, c.Progress)); err != nil {
		sp.SetError(err)
		return ReservationResult{}, err
	}

	syncStates := make([]*stationState, len(c.Workload.Streams))
	for i := range c.Workload.Streams {
		syncStates[i] = r.stations[i].sync
	}
	stationResults, misses := collectStations(syncStates, horizon)
	res := ReservationResult{
		Result: Result{
			Protocol:        "IEEE 802.5 (reservation MAC)",
			Horizon:         horizon,
			Stations:        stationResults,
			DeadlineMisses:  misses,
			SyncTime:        r.syncTime,
			AsyncTime:       r.asyncTime,
			TokenTime:       r.tokenTime,
			RotationMean:    r.passStats.Mean(),
			RotationMax:     r.passStats.Max(),
			RotationN:       r.passStats.N(),
			TokenLosses:     r.losses,
			RecoveryTime:    r.recovery,
			CorruptedFrames: r.corrupted,
			Crashes:         r.inj.CrashCount(),
		},
		PriorityInversions: r.inversions,
	}
	res.IdleTime = math.Max(0, horizon-res.SyncTime-res.AsyncTime-res.TokenTime-res.RecoveryTime)
	sp.SetAttr("misses", misses)
	sp.SetAttr("inversions", r.inversions)
	return res, nil
}

// ReservationResult extends Result with arbitration quality metrics.
type ReservationResult struct {
	Result
	// PriorityInversions counts frames transmitted while a strictly
	// higher-priority synchronous frame waited at another station —
	// impossible under ideal arbitration, expected when priority levels
	// are scarce.
	PriorityInversions int
}

// assignPriorities maps streams to ring priority levels rate-monotonically:
// the shortest period gets the highest level. With L levels and more
// streams than levels, streams are partitioned into L rate groups.
func (r *resRun) assignPriorities() {
	type ranked struct {
		station int
		period  float64
	}
	var order []ranked
	for i, st := range r.stations {
		if st.sync != nil {
			order = append(order, ranked{station: i, period: st.sync.stream.Period})
		}
	}
	// Insertion sort by period ascending (n is small; avoids an import).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].period < order[j-1].period; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	levels := r.cfg.PriorityLevels
	if levels == 0 || levels > len(order) {
		levels = len(order)
	}
	if levels == 0 {
		return
	}
	perLevel := (len(order) + levels - 1) / levels
	for rank, o := range order {
		// rank 0 (shortest period) → highest level number.
		group := rank / perLevel
		r.stations[o.station].priority = levels - group
	}
}

// hopTime spreads Θ over the stations.
func (r *resRun) hopTime() float64 {
	return r.cfg.Net.Theta() / float64(r.cfg.Net.Stations)
}

// topPending returns the station's highest pending priority, or noPending
// when it has nothing to send.
func (r *resRun) topPending(idx int) int {
	st := r.stations[idx]
	if st.sync != nil && len(st.sync.queue) > 0 {
		return st.priority
	}
	if r.cfg.AsyncSaturated {
		return asyncPriority
	}
	return noPending
}

// highestPendingOnRing returns the maximum pending priority across all
// stations (noPending when the ring is silent).
func (r *resRun) highestPendingOnRing() int {
	best := noPending
	for i := range r.stations {
		if p := r.topPending(i); p > best {
			best = p
		}
	}
	return best
}

// tokenAt processes the free token arriving at station idx.
func (r *resRun) tokenAt(idx int) {
	now := r.engine.Now()
	for i, st := range r.stations {
		if st.sync == nil {
			continue
		}
		i := i
		st.sync.release(now, func(msg pendingMessage) {
			emit(r.cfg.Tracer, TraceEvent{Time: msg.arrival, Kind: TraceArrival, Station: i})
		})
	}
	st := r.stations[idx]

	// Ring reconfiguration: crashes and restarts up to now pause the whole
	// ring for the beacon/bypass latency, then the visit resumes.
	if bp := r.inj.TakeBypass(now); bp > 0 {
		r.recovery += bp
		emit(r.cfg.Tracer, TraceEvent{Time: now, Kind: TraceRecovery, Station: idx, Duration: bp})
		_, _ = r.engine.At(now+bp, func() { r.tokenAt(idx) })
		return
	}

	// A crashed station is bypassed: it neither captures the token nor
	// bids a reservation; the token passes straight through.
	if r.inj.Down(idx, now) {
		r.forwardToken(idx, now)
		return
	}

	// Unstacking: a stacking station seeing the free token at its stacked
	// priority decides whether to lower the ring priority.
	if len(st.stack) > 0 && st.stack[len(st.stack)-1].new == r.tokenPrio {
		top := st.stack[len(st.stack)-1]
		if r.reservation > top.old {
			// Re-issue at the reserved priority; stay stacked.
			st.stack[len(st.stack)-1].new = r.reservation
			r.tokenPrio = r.reservation
		} else {
			r.tokenPrio = top.old
			st.stack = st.stack[:len(st.stack)-1]
		}
		r.reservation = 0
	}

	// Capture: a pending frame of priority ≥ token priority seizes the
	// token.
	if p := r.topPending(idx); p >= r.tokenPrio && p >= asyncPriority {
		r.transmit(idx, p, now)
		return
	}

	// No capture: record a reservation bid and forward the token.
	if p := r.topPending(idx); p > r.reservation && p > r.tokenPrio {
		r.reservation = p
		emit(r.cfg.Tracer, TraceEvent{Time: now, Kind: TraceReserve, Station: idx, Detail: float64(p)})
	}
	r.forwardToken(idx, now)
}

// transmit sends one frame from station idx at priority p.
func (r *resRun) transmit(idx, p int, now float64) {
	st := r.stations[idx]

	// Priority inversion accounting: someone strictly higher is waiting.
	if r.highestPendingOnRing() > p {
		r.inversions++
	}

	var eff float64
	finishMsg := false
	isAsync := p == asyncPriority || st.sync == nil || len(st.sync.queue) == 0
	var payload float64
	if isAsync {
		eff = math.Max(r.cfg.Frame.Time(r.cfg.Net.BandwidthBPS), r.cfg.Net.Theta())
		payload = r.cfg.Frame.InfoBits
		r.asyncTime += eff
		emit(r.cfg.Tracer, TraceEvent{Time: now, Kind: TraceAsync, Station: idx, Duration: eff, Detail: payload})
	} else {
		msg := &st.sync.queue[0]
		payload = math.Min(msg.remainingBits, r.cfg.Frame.InfoBits)
		eff = r.effectiveFrameTime(payload)
		r.syncTime += eff
		if r.inj.FrameCorrupted(idx) {
			// The frame held the medium but failed its CRC; the payload
			// stays queued for retransmission on a later capture.
			r.corrupted++
			emit(r.cfg.Tracer, TraceEvent{Time: now, Kind: TraceCorrupt, Station: idx, Duration: eff, Detail: payload})
		} else {
			msg.remainingBits -= payload
			finishMsg = msg.remainingBits <= 0
			emit(r.cfg.Tracer, TraceEvent{Time: now, Kind: TraceFrame, Station: idx, Duration: eff, Detail: payload})
		}
	}

	if r.served {
		r.passStats.Add(now - r.lastService)
	}

	done := now + eff
	if done > r.horizon {
		// The frame completes beyond the horizon; stop here.
		return
	}
	_, _ = r.engine.At(done, func() {
		if finishMsg {
			completed := st.sync.queue[0]
			st.sync.queue = st.sync.queue[1:]
			lateness := st.sync.finish(completed, r.engine.Now())
			kind := TraceComplete
			if lateness > 0 {
				kind = TraceMiss
			}
			emit(r.cfg.Tracer, TraceEvent{Time: r.engine.Now(), Kind: kind, Station: idx, Detail: lateness})
		}
		r.lastService = r.engine.Now()
		r.served = true

		// Issue the new token. The reservation field collected during the
		// frame's circulation is the max pending priority elsewhere.
		reserved := noPending
		for i := range r.stations {
			if i == idx {
				continue
			}
			if q := r.topPending(i); q > reserved {
				reserved = q
				emit(r.cfg.Tracer, TraceEvent{
					Time: r.engine.Now(), Kind: TraceReserve, Station: i, Detail: float64(q),
				})
			}
		}
		if reserved > r.tokenPrio {
			// Raise the ring priority and stack.
			r.stations[idx].stack = append(r.stations[idx].stack,
				stackedPriority{old: r.tokenPrio, new: reserved})
			r.tokenPrio = reserved
		}
		r.reservation = 0
		r.forwardToken(idx, r.engine.Now())
	})
}

// forwardToken moves the free token one hop; a token lost on the hop is
// rebuilt by the claim/beacon process, during which the medium is dead.
func (r *resRun) forwardToken(idx int, now float64) {
	var rec float64
	if r.inj.TokenLost(idx) {
		rec = r.inj.RecoveryDuration()
		r.losses++
		r.recovery += rec
		emit(r.cfg.Tracer, TraceEvent{Time: now, Kind: TraceRecovery, Station: idx, Duration: rec})
	}
	hop := r.hopTime()
	r.tokenTime += hop
	emit(r.cfg.Tracer, TraceEvent{Time: now, Kind: TraceTokenPass, Station: idx, Duration: hop})
	next := (idx + 1) % r.cfg.Net.Stations
	at := now + hop + rec
	if at <= r.horizon {
		_, _ = r.engine.At(at, func() { r.tokenAt(next) })
	}
}

// effectiveFrameTime applies the Section 4.3 medium occupancy rules.
func (r *resRun) effectiveFrameTime(payloadBits float64) float64 {
	bw := r.cfg.Net.BandwidthBPS
	theta := r.cfg.Net.Theta()
	f := r.cfg.Frame.Time(bw)
	if f <= theta {
		return theta
	}
	if payloadBits >= r.cfg.Frame.InfoBits {
		return f
	}
	return math.Max((payloadBits+r.cfg.Frame.OvhdBits)/bw, theta)
}
