package tokensim

import (
	"errors"
	"math/rand"
	"testing"

	"ringsched/internal/message"
)

func smallSet() message.Set {
	return message.Set{
		{Name: "a", Period: 10e-3, LengthBits: 1000},
		{Name: "b", Period: 30e-3, LengthBits: 2000},
	}
}

func TestNewWorkloadSynchronized(t *testing.T) {
	w, err := NewWorkload(smallSet(), 4, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, off := range w.Offsets {
		if off != 0 {
			t.Errorf("offset[%d] = %v, want 0", i, off)
		}
	}
	if len(w.Streams) != 2 {
		t.Errorf("streams = %d, want 2", len(w.Streams))
	}
}

func TestNewWorkloadRandomPhases(t *testing.T) {
	set := smallSet()
	w, err := NewWorkload(set, 4, PhasingRandom, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for i, off := range w.Offsets {
		if off < 0 || off >= set[i].Period {
			t.Errorf("offset[%d] = %v outside [0, %v)", i, off, set[i].Period)
		}
	}
	if _, err := NewWorkload(set, 4, PhasingRandom, nil); !errors.Is(err, ErrNilRandPhases) {
		t.Errorf("nil rng: %v, want ErrNilRandPhases", err)
	}
}

func TestNewWorkloadErrors(t *testing.T) {
	if _, err := NewWorkload(smallSet(), 1, PhasingSynchronized, nil); !errors.Is(err, ErrTooManyStreams) {
		t.Errorf("too many streams: %v, want ErrTooManyStreams", err)
	}
	if _, err := NewWorkload(nil, 4, PhasingSynchronized, nil); err == nil {
		t.Error("nil set accepted")
	}
}

func TestNewWorkloadClonesStreams(t *testing.T) {
	set := smallSet()
	w, err := NewWorkload(set, 4, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	set[0].LengthBits = 999
	if w.Streams[0].LengthBits == 999 {
		t.Error("workload shares storage with the caller's set")
	}
}

func TestHopDistance(t *testing.T) {
	tests := []struct {
		a, b, n, want int
	}{
		{0, 0, 5, 0},
		{0, 3, 5, 3},
		{3, 0, 5, 2},
		{4, 0, 5, 1},
		{2, 2, 7, 0},
	}
	for _, tt := range tests {
		if got := hopDistance(tt.a, tt.b, tt.n); got != tt.want {
			t.Errorf("hopDistance(%d,%d,%d) = %d, want %d", tt.a, tt.b, tt.n, got, tt.want)
		}
	}
}

func TestStationStateReleaseAndFinish(t *testing.T) {
	st := &stationState{stream: message.Stream{Period: 10e-3, LengthBits: 100}}
	released := 0
	st.release(25e-3, func(pendingMessage) { released++ })
	if released != 3 {
		t.Errorf("onRelease called %d times, want 3", released)
	}
	if len(st.queue) != 3 {
		t.Fatalf("released %d messages by t=25ms, want 3 (t=0,10,20)", len(st.queue))
	}
	if st.queue[1].deadline != 20e-3 {
		t.Errorf("second deadline = %v, want 20ms", st.queue[1].deadline)
	}
	// Finish the first on time, the second late.
	st.finish(st.queue[0], 9e-3)
	st.finish(st.queue[1], 21e-3)
	if st.completed != 1 || st.missed != 1 {
		t.Errorf("completed/missed = %d/%d, want 1/1", st.completed, st.missed)
	}
	if diff := st.maxLateness - 1e-3; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("maxLateness = %v, want 1ms", st.maxLateness)
	}
}

func TestMaxQueueTracked(t *testing.T) {
	st := &stationState{stream: message.Stream{Period: 10e-3, LengthBits: 100}}
	st.release(35e-3, nil) // four instances pending at once
	if st.maxQueue != 4 {
		t.Errorf("maxQueue = %d, want 4", st.maxQueue)
	}
	st.finish(st.queue[0], 36e-3)
	st.queue = st.queue[1:]
	st.release(36e-3, nil)
	if st.maxQueue != 4 {
		t.Errorf("maxQueue = %d after draining, want 4 (high-water mark)", st.maxQueue)
	}
	results, _ := collectStations([]*stationState{st}, 1)
	if results[0].MaxQueue != 4 {
		t.Errorf("result MaxQueue = %d, want 4", results[0].MaxQueue)
	}
}

func TestHorizonFor(t *testing.T) {
	set := smallSet()
	if got := horizonFor(set, 20); got != 20*30e-3 {
		t.Errorf("horizonFor = %v, want 600ms", got)
	}
	// The 50×min floor dominates for tight ratios.
	tight := message.Set{{Period: 1e-3, LengthBits: 1}, {Period: 2e-3, LengthBits: 1}}
	if got := horizonFor(tight, 20); got != 50e-3 {
		t.Errorf("horizonFor = %v, want 50ms", got)
	}
}
