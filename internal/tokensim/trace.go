package tokensim

import (
	"fmt"
	"io"
)

// TraceKind classifies simulator trace events.
type TraceKind int

const (
	// TraceArrival is a synchronous message release.
	TraceArrival TraceKind = iota + 1
	// TraceFrame is one synchronous frame (or burst chunk) transmission.
	TraceFrame
	// TraceAsync is an asynchronous frame transmission.
	TraceAsync
	// TraceTokenPass is a token movement charged to the medium.
	TraceTokenPass
	// TraceComplete is a message finishing before its deadline.
	TraceComplete
	// TraceMiss is a message finishing after its deadline.
	TraceMiss
	// TraceRecovery is a claim/beacon recovery or bypass reconfiguration
	// period during which the medium carries nothing.
	TraceRecovery
	// TraceCorrupt is a frame that occupied the medium but failed its CRC
	// check; the payload must be retransmitted.
	TraceCorrupt
	// TraceReserve is an 802.5 priority reservation bid: a station with a
	// pending frame it could not capture the token for writes its priority
	// (Detail) into the reservation field.
	TraceReserve
	// TraceLateCount is an FDDI late-counter increment: the token returned
	// to a station after its rotation timer expired. Detail is the
	// lateness beyond TTRT in seconds.
	TraceLateCount
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceArrival:
		return "arrival"
	case TraceFrame:
		return "frame"
	case TraceAsync:
		return "async"
	case TraceTokenPass:
		return "token"
	case TraceComplete:
		return "complete"
	case TraceMiss:
		return "MISS"
	case TraceRecovery:
		return "recovery"
	case TraceCorrupt:
		return "CORRUPT"
	case TraceReserve:
		return "reserve"
	case TraceLateCount:
		return "late"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one observed simulator event.
type TraceEvent struct {
	// Time is the simulation time of the event in seconds.
	Time float64
	// Kind classifies the event.
	Kind TraceKind
	// Station is the ring position involved.
	Station int
	// Duration is medium time consumed (frames, token passes); zero for
	// instantaneous events.
	Duration float64
	// Detail carries event-specific data: payload bits for frames,
	// lateness for completions/misses.
	Detail float64
}

// String renders one event as a log line.
func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceFrame, TraceAsync, TraceCorrupt:
		return fmt.Sprintf("%12.6fms %-8s stn=%-3d dur=%.3fus payload=%.0fb",
			e.Time*1e3, e.Kind, e.Station, e.Duration*1e6, e.Detail)
	case TraceTokenPass, TraceRecovery:
		return fmt.Sprintf("%12.6fms %-8s stn=%-3d dur=%.3fus",
			e.Time*1e3, e.Kind, e.Station, e.Duration*1e6)
	case TraceComplete, TraceMiss:
		return fmt.Sprintf("%12.6fms %-8s stn=%-3d lateness=%.3fms",
			e.Time*1e3, e.Kind, e.Station, e.Detail*1e3)
	case TraceReserve:
		return fmt.Sprintf("%12.6fms %-8s stn=%-3d prio=%.0f",
			e.Time*1e3, e.Kind, e.Station, e.Detail)
	case TraceLateCount:
		return fmt.Sprintf("%12.6fms %-8s stn=%-3d late=%.3fms",
			e.Time*1e3, e.Kind, e.Station, e.Detail*1e3)
	default:
		return fmt.Sprintf("%12.6fms %-8s stn=%-3d", e.Time*1e3, e.Kind, e.Station)
	}
}

// Tracer receives simulator events as they occur. Implementations must be
// fast; they run inline with the simulation.
type Tracer interface {
	Trace(e TraceEvent)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(e TraceEvent)

// Trace implements Tracer.
func (f TracerFunc) Trace(e TraceEvent) { f(e) }

// WriterTracer logs every event as a line to an io.Writer, up to Limit
// events (0 = unlimited).
type WriterTracer struct {
	W     io.Writer
	Limit int

	written int
}

var _ Tracer = (*WriterTracer)(nil)

// Trace implements Tracer.
func (t *WriterTracer) Trace(e TraceEvent) {
	if t.Limit > 0 && t.written >= t.Limit {
		return
	}
	t.written++
	fmt.Fprintln(t.W, e.String())
}

// CountingTracer tallies events by kind; tests use it to assert on
// simulator behavior without string parsing.
type CountingTracer struct {
	Counts map[TraceKind]int
}

var _ Tracer = (*CountingTracer)(nil)

// Trace implements Tracer.
func (t *CountingTracer) Trace(e TraceEvent) {
	if t.Counts == nil {
		t.Counts = make(map[TraceKind]int)
	}
	t.Counts[e.Kind]++
}

// MultiTracer fans each event out to every non-nil tracer, in order —
// e.g. a text WriterTracer for the operator next to a tokenstats
// Collector for the summary. Returns nil when nothing remains, so the
// result can be assigned to a simulation's Tracer field directly.
func MultiTracer(tracers ...Tracer) Tracer {
	kept := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return TracerFunc(func(e TraceEvent) {
		for _, t := range kept {
			t.Trace(e)
		}
	})
}

// emit sends an event to an optional tracer.
func emit(tr Tracer, e TraceEvent) {
	if tr != nil {
		tr.Trace(e)
	}
}
