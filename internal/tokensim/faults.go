package tokensim

import (
	"errors"
	"math/rand"
)

// ErrFaultsNeedRand is returned when a fault model with a positive loss
// probability has no random source.
var ErrFaultsNeedRand = errors.New("tokensim: fault model requires a non-nil Rng")

// Faults injects token-loss failures into a simulation. Real token rings
// recover from a lost token through a claim/purge process that costs ring
// time; while it runs, no station transmits. The paper's protocols both
// assume a healthy ring — this model measures how much of the analytical
// guarantee survives fault recovery (the SAFENET survivability setting
// that motivates the timed token protocol).
type Faults struct {
	// TokenLossProb is the probability that the token is lost at any
	// single token service step: a station visit for the TTP simulator, a
	// frame service for PDPSim, and every hop for the reservation MAC.
	TokenLossProb float64
	// RecoveryTime is the claim-process duration charged for each loss;
	// the medium carries nothing while it runs.
	RecoveryTime float64
	// Rng drives the loss process. Required when TokenLossProb > 0.
	Rng *rand.Rand
}

// Validate reports the first invalid field, or nil. A nil fault model is
// always valid.
func (f *Faults) Validate() error {
	if f == nil {
		return nil
	}
	if f.TokenLossProb < 0 || f.TokenLossProb > 1 {
		return errors.New("tokensim: token loss probability must be in [0, 1]")
	}
	if f.RecoveryTime < 0 {
		return errors.New("tokensim: recovery time must be non-negative")
	}
	if f.TokenLossProb > 0 && f.Rng == nil {
		return ErrFaultsNeedRand
	}
	return nil
}

// roll returns the recovery delay to charge at one token service step:
// RecoveryTime when the token is lost there, 0 otherwise.
func (f *Faults) roll() float64 {
	if f == nil || f.TokenLossProb == 0 {
		return 0
	}
	if f.Rng.Float64() < f.TokenLossProb {
		return f.RecoveryTime
	}
	return 0
}
