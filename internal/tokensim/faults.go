package tokensim

import "ringsched/internal/faults"

// Faults is the composable fault model a simulation run injects: token loss
// with an event-driven claim/beacon recovery, frame corruption on Bernoulli
// or Gilbert–Elliott channels with CRC-detect-and-retransmit, and station
// crash/restart with bypass latency. It aliases faults.Model — see package
// ringsched/internal/faults for the field documentation and the named CLI
// scenarios.
//
// A nil (or all-zero) model reproduces the clean-ring sample path
// bit-identically: the simulators build no injector and take no fault
// branches. Randomness comes from per-(Seed, station, purpose) streams, so
// fault runs are reproducible at any worker count.
type Faults = faults.Model
