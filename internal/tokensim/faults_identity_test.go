package tokensim

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/faults"
	"ringsched/internal/frame"
	"ringsched/internal/message"
)

// identityPDPSim is a moderately loaded ring with real slack: 5 frames of
// payload per 200 µs period against ~60 µs of service.
func identityPDPSim(fm *Faults) PDPSim {
	w, err := NewWorkload(message.Set{{Name: "s", Period: 200e-6, LengthBits: 40}},
		4, PhasingSynchronized, nil)
	if err != nil {
		panic(err)
	}
	return PDPSim{
		Net: tinyPlant(), Frame: tinyFrame(), Variant: core.Modified8025,
		Workload: w, Horizon: 0.05, Faults: fm,
	}
}

// The acceptance bar: a configured-but-inactive fault model (all
// probabilities zero) must reproduce the clean sample path bit-identically,
// for every simulator.
func TestInactiveFaultModelBitIdenticalPDP(t *testing.T) {
	clean, err := identityPDPSim(nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := identityPDPSim(&Faults{Seed: 42}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, faulty) {
		t.Errorf("inactive model diverged from nil faults:\nclean:  %+v\nfaulty: %+v", clean, faulty)
	}
}

func TestInactiveFaultModelBitIdenticalTTP(t *testing.T) {
	s := ttpTinySim(36, 20e-6)
	clean, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	s.Faults = &Faults{Seed: 42}
	faulty, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, faulty) {
		t.Errorf("inactive model diverged from nil faults:\nclean:  %+v\nfaulty: %+v", clean, faulty)
	}
}

func TestInactiveFaultModelBitIdenticalReservation(t *testing.T) {
	w, err := NewWorkload(message.Set{
		{Name: "a", Period: 200e-6, LengthBits: 24},
		{Name: "b", Period: 400e-6, LengthBits: 16},
	}, 4, PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(fm *Faults) ReservationSim {
		return ReservationSim{
			Net: tinyPlant(), Frame: tinyFrame(),
			Workload: w, Horizon: 0.05, Faults: fm,
		}
	}
	clean, err := mk(nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := mk(&Faults{Seed: 42}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, faulty) {
		t.Errorf("inactive model diverged from nil faults:\nclean:  %+v\nfaulty: %+v", clean, faulty)
	}
}

// Fixed-seed degraded-mode sweep: as loss probability (PDP, TTP) and
// corruption burst length (PDP, TTP) grow, deadline misses must not
// decrease, and the harshest point must actually miss.
func TestFaultSweepMissesMonotone(t *testing.T) {
	cases := []struct {
		name   string
		levels []string
		run    func(level int) (Result, error)
	}{
		{
			name:   "pdp loss",
			levels: []string{"p=0", "p=0.05", "p=0.2", "p=0.5"},
			run: func(level int) (Result, error) {
				probs := []float64{0, 0.05, 0.2, 0.5}
				var fm *Faults
				if probs[level] > 0 {
					fm = &Faults{
						TokenLossProb: probs[level],
						Recovery:      faults.Recovery{Fixed: 100e-6},
						Seed:          7,
					}
				}
				return identityPDPSim(fm).Run()
			},
		},
		{
			name:   "pdp burst",
			levels: []string{"clean", "burst=1", "burst=8", "burst=64"},
			run: func(level int) (Result, error) {
				bursts := []float64{0, 1, 8, 64}
				var fm *Faults
				if bursts[level] > 0 {
					fm = &Faults{
						Channel: faults.Channel{
							Kind:             faults.ChannelGilbertElliott,
							BurstCorruptProb: 1,
							MeanBurst:        bursts[level],
							MeanGap:          50,
						},
						Seed: 7,
					}
				}
				return identityPDPSim(fm).Run()
			},
		},
		{
			name:   "ttp loss",
			levels: []string{"p=0", "p=0.05", "p=0.2", "p=0.5"},
			run: func(level int) (Result, error) {
				probs := []float64{0, 0.05, 0.2, 0.5}
				s := ttpFaultSweepSim()
				if probs[level] > 0 {
					s.Faults = &Faults{
						TokenLossProb: probs[level],
						Recovery:      faults.Recovery{Fixed: 150e-6},
						Seed:          7,
					}
				}
				return s.Run()
			},
		},
		{
			name:   "ttp burst",
			levels: []string{"clean", "burst=1", "burst=8", "burst=64"},
			run: func(level int) (Result, error) {
				bursts := []float64{0, 1, 8, 64}
				s := ttpFaultSweepSim()
				if bursts[level] > 0 {
					s.Faults = &Faults{
						Channel: faults.Channel{
							Kind:             faults.ChannelGilbertElliott,
							BurstCorruptProb: 1,
							MeanBurst:        bursts[level],
							MeanGap:          20,
						},
						Seed: 7,
					}
				}
				return s.Run()
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			misses := make([]int, len(tc.levels))
			for i := range tc.levels {
				res, err := tc.run(i)
				if err != nil {
					t.Fatalf("%s: %v", tc.levels[i], err)
				}
				misses[i] = res.DeadlineMisses
			}
			for i := 1; i < len(misses); i++ {
				if misses[i] < misses[i-1] {
					t.Errorf("misses not monotone: %v across %v", misses, tc.levels)
					break
				}
			}
			if misses[len(misses)-1] <= misses[0] {
				t.Errorf("harshest level %s did not add misses: %v", tc.levels[len(tc.levels)-1], misses)
			}
			// Determinism: re-running the harshest point reproduces it.
			res, err := tc.run(len(tc.levels) - 1)
			if err != nil {
				t.Fatal(err)
			}
			if res.DeadlineMisses != misses[len(misses)-1] {
				t.Errorf("harshest point not deterministic: %d then %d",
					misses[len(misses)-1], res.DeadlineMisses)
			}
		})
	}
}

// ttpFaultSweepSim is a TTP ring with a deadline tight enough that
// sustained faults show up as misses: 4 visits needed per 500 µs period.
func ttpFaultSweepSim() TTPSim {
	w, err := NewWorkload(message.Set{{Name: "s", Period: 500e-6, LengthBits: 72}},
		2, PhasingSynchronized, nil)
	if err != nil {
		panic(err)
	}
	return TTPSim{
		Net:         ttpTinyPlant(),
		SyncFrame:   frame.Spec{InfoBits: 8, OvhdBits: 2},
		AsyncFrame:  frame.Spec{InfoBits: 8, OvhdBits: 2},
		TTRT:        100e-6,
		Allocations: []float64{20e-6},
		Workload:    w,
		Horizon:     0.05,
	}
}

// Seed stability: two identical fault models drive identical runs, and the
// model's station substreams make the sample path independent of pointer
// identity or prior runs (the shared-Rng bug this replaced).
func TestFaultRunsSeedStable(t *testing.T) {
	mk := func() *Faults {
		return &Faults{
			TokenLossProb: 0.1,
			Recovery:      faults.Recovery{Fixed: 50e-6},
			Channel: faults.Channel{
				Kind:        faults.ChannelBernoulli,
				CorruptProb: 0.05,
			},
			Seed: 11,
		}
	}
	a, err := identityPDPSim(mk()).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Re-use one model value across two runs: the injector must not carry
	// state between runs.
	shared := mk()
	b1, err := identityPDPSim(shared).Run()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := identityPDPSim(shared).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range []Result{b1, b2} {
		if !reflect.DeepEqual(a, r) {
			t.Errorf("run %d diverged from fresh-model run", i+1)
		}
	}
}

func ExamplePDPSim_faultInjection() {
	w, _ := NewWorkload(message.Set{{Name: "s", Period: 200e-6, LengthBits: 40}},
		4, PhasingSynchronized, nil)
	res, _ := PDPSim{
		Net: tinyPlant(), Frame: tinyFrame(), Variant: core.Modified8025,
		Workload: w, Horizon: 0.01,
		Faults: &Faults{
			TokenLossProb: 0.5,
			Recovery:      faults.Recovery{Fixed: 100e-6},
			Seed:          3,
		},
	}.RunContext(context.Background())
	fmt.Println(res.TokenLosses > 0, res.RecoveryTime > 0)
	// Output: true true
}
