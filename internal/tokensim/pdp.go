package tokensim

import (
	"context"
	"math"

	"ringsched/internal/core"
	"ringsched/internal/faults"
	"ringsched/internal/frame"
	"ringsched/internal/progress"
	"ringsched/internal/ring"
	"ringsched/internal/sim"
	"ringsched/internal/stats"
	"ringsched/internal/trace"
)

// TokenPassModel selects how the PDP simulator charges token-circulation
// time between consecutive frame transmissions.
type TokenPassModel int

const (
	// PassMeasured charges the geometric walk time from the previous
	// transmitter to the next one (a full rotation when the standard
	// protocol's holder recaptures its own token). This is the physical
	// model; its long-run average over random transmitter positions is
	// the Θ/2 the paper assumes.
	PassMeasured TokenPassModel = iota + 1
	// PassAverageHalfTheta charges exactly the analysis's assumption:
	// Θ/2 per frame for the standard protocol, Θ/2 per message for the
	// modified one. Validation tests use this model to compare the
	// operational behavior against Theorem 4.1 on equal terms.
	PassAverageHalfTheta
)

// String implements fmt.Stringer.
func (m TokenPassModel) String() string {
	switch m {
	case PassMeasured:
		return "measured"
	case PassAverageHalfTheta:
		return "theta/2"
	default:
		return "unknown"
	}
}

// PDPSim simulates the priority driven protocol at frame granularity. The
// service discipline matches the analytical model of Section 4: among
// pending synchronous frames the highest rate-monotonic priority is served
// next; preemption happens only at frame boundaries; each frame occupies
// the medium for its Section 4.3 effective time; and the token physically
// travels hop by hop between consecutive transmitters, so the
// token-circulation overhead the analysis averages as Θ/2 is *measured*
// here rather than assumed.
type PDPSim struct {
	// Net is the ring plant.
	Net ring.Config
	// Frame is the shared frame format.
	Frame frame.Spec
	// Variant selects the standard or modified implementation.
	Variant core.Variant
	// Workload supplies the synchronous streams and their phasing.
	Workload Workload
	// AsyncSaturated, when true, keeps a maximum-length asynchronous frame
	// ready at every station: whenever no synchronous frame is pending,
	// an asynchronous frame seizes the medium and newly arrived
	// synchronous messages must wait for it — the blocking source of
	// Lemma 4.1.
	AsyncSaturated bool
	// Horizon is the simulated duration; zero picks a default long enough
	// for steady state (20 periods of the slowest stream).
	Horizon float64
	// TokenPass selects the token-circulation cost model; zero value
	// means PassMeasured.
	TokenPass TokenPassModel
	// Tracer, when non-nil, observes every simulator event (arrivals,
	// frames, token passes, completions).
	Tracer Tracer
	// Faults, when non-nil, injects token-loss failures.
	Faults *Faults
	// MaxEvents bounds the discrete events fired by one run; 0 means
	// unlimited. Exceeding it aborts with sim.ErrMaxEvents — the runaway
	// guard for degenerate configurations whose event chains never reach
	// the horizon.
	MaxEvents int
	// Progress, when non-nil, observes event-loop advancement (every ~1k
	// events and at the end of the run).
	Progress progress.Progress
}

// pdpRun is the mutable state of one simulation run.
type pdpRun struct {
	cfg      PDPSim
	engine   *sim.Engine
	stations []*stationState
	tokenPos int
	// idleSince is the time the medium went idle, or NaN while busy.
	idleSince float64
	horizon   float64

	// idle reports that no service event chain is in flight; idleWake is
	// the pending wake-up (nil when the next arrival lies past the
	// horizon). inject cancels the wake-up to service a bridged hand-off
	// immediately.
	idle     bool
	idleWake *sim.Event
	// onDone, when non-nil, observes every completed message — the hook
	// the topology simulator uses to hand messages to the next ring.
	onDone func(station int, msg pendingMessage, at float64)

	syncTime  float64
	asyncTime float64
	tokenTime float64
	passStats stats.Running

	// inj is the fault injector for this run; nil on a healthy ring, in
	// which case no fault branch below ever fires.
	inj       *faults.Injector
	losses    int
	recovery  float64
	corrupted int
}

// Run executes the simulation and returns the per-station outcome. It is
// the uncancelable convenience wrapper around RunContext.
func (c PDPSim) Run() (Result, error) {
	return c.RunContext(context.Background())
}

// runLoopOptions wires a simulator's MaxEvents guard and Progress observer
// into the engine's context-aware run loop.
func runLoopOptions(maxEvents int, obs progress.Progress) sim.RunOptions {
	opts := sim.RunOptions{MaxEvents: maxEvents}
	if obs != nil {
		opts.OnAdvance = func(fired int, now float64) { obs.SimulatorAdvanced(fired, now) }
	}
	return opts
}

// validate checks the configuration and resolves the simulation horizon.
func (c PDPSim) validate() (float64, error) {
	if err := c.Net.Validate(); err != nil {
		return 0, err
	}
	if err := c.Frame.Validate(); err != nil {
		return 0, err
	}
	if c.Variant != core.Standard8025 && c.Variant != core.Modified8025 {
		return 0, core.ErrBadVariant
	}
	if err := c.Workload.Streams.Validate(); err != nil {
		return 0, err
	}
	if err := c.Faults.Validate(); err != nil {
		return 0, err
	}
	horizon := c.Horizon
	if horizon == 0 {
		horizon = horizonFor(c.Workload.Streams, 20)
	}
	if horizon <= 0 {
		return 0, ErrBadHorizon
	}
	return horizon, nil
}

// newPDPRun builds the run state on the given engine — the run's own for a
// standalone simulation, a shared one when composed into a topology.
func newPDPRun(c PDPSim, engine *sim.Engine, horizon float64) *pdpRun {
	r := &pdpRun{cfg: c, engine: engine, horizon: horizon, idleSince: 0}
	r.inj = c.Faults.Injector(c.Net.Stations, c.Net.Theta(), horizon)
	r.stations = make([]*stationState, len(c.Workload.Streams))
	for i, s := range c.Workload.Streams {
		r.stations[i] = &stationState{stream: s, nextArrival: c.Workload.Offsets[i]}
	}
	return r
}

// start kicks the service loop at the first arrival (or immediately when
// saturated asynchronous traffic keeps the medium busy from time 0).
func (r *pdpRun) start() error {
	start := 0.0
	if !r.cfg.AsyncSaturated {
		start = r.nextArrivalTime()
	}
	r.idle = true
	if start <= r.horizon {
		ev, err := r.engine.At(start, r.service)
		if err != nil {
			return err
		}
		r.idleWake = ev
	}
	return nil
}

// collect summarizes the run after the event loop has drained.
func (r *pdpRun) collect() Result {
	stationResults, misses := collectStations(r.stations, r.horizon)
	res := Result{
		Protocol:        r.cfg.Variant.String(),
		Horizon:         r.horizon,
		Stations:        stationResults,
		DeadlineMisses:  misses,
		SyncTime:        r.syncTime,
		AsyncTime:       r.asyncTime,
		TokenTime:       r.tokenTime,
		RotationMean:    r.passStats.Mean(),
		RotationMax:     r.passStats.Max(),
		RotationN:       r.passStats.N(),
		TokenLosses:     r.losses,
		RecoveryTime:    r.recovery,
		CorruptedFrames: r.corrupted,
		Crashes:         r.inj.CrashCount(),
	}
	res.IdleTime = math.Max(0, r.horizon-res.SyncTime-res.AsyncTime-res.TokenTime-res.RecoveryTime)
	return res
}

// RunContext is Run with cancellation: the event loop polls ctx
// periodically and aborts with ctx.Err() once it is canceled.
func (c PDPSim) RunContext(ctx context.Context) (Result, error) {
	horizon, err := c.validate()
	if err != nil {
		return Result{}, err
	}
	r := newPDPRun(c, &sim.Engine{}, horizon)

	ctx, sp := trace.Start(ctx, "sim.pdp")
	defer sp.End()
	sp.SetAttr("variant", c.Variant.String())
	sp.SetAttr("stations", c.Net.Stations)
	sp.SetAttr("horizonSec", horizon)

	if err := r.start(); err != nil {
		sp.SetError(err)
		return Result{}, err
	}
	if err := r.engine.RunUntilContext(ctx, horizon, runLoopOptions(c.MaxEvents, c.Progress)); err != nil {
		sp.SetError(err)
		return Result{}, err
	}

	res := r.collect()
	sp.SetAttr("misses", res.DeadlineMisses)
	sp.SetAttr("rotationMeanSec", res.RotationMean)
	return res, nil
}

// inject delivers an externally arrived message — a bridged hand-off from
// another ring — to station idx, waking the service loop when the medium
// is idle. Local traffic never calls it, so single-ring runs are
// untouched.
func (r *pdpRun) inject(idx int, msg pendingMessage) {
	r.stations[idx].push(msg)
	emit(r.cfg.Tracer, TraceEvent{Time: msg.arrival, Kind: TraceArrival, Station: idx})
	if r.idle {
		r.engine.Cancel(r.idleWake)
		r.idle, r.idleWake = false, nil
		_, _ = r.engine.At(r.engine.Now(), r.service)
	}
}

// setDone installs the completion hook (topology composition only).
func (r *pdpRun) setDone(fn func(station int, msg pendingMessage, at float64)) {
	r.onDone = fn
}

// setFlow tags station idx's messages with a topology flow index.
func (r *pdpRun) setFlow(idx, flow int) {
	r.stations[idx].flow = flow
}

// hopTime is the token's per-hop travel time: the full circulation time Θ
// spread uniformly over the n stations.
func (r *pdpRun) hopTime() float64 {
	return r.cfg.Net.Theta() / float64(r.cfg.Net.Stations)
}

// effectiveFrameTime implements the Section 4.3 medium occupancy rules for
// one frame carrying payloadBits.
func (r *pdpRun) effectiveFrameTime(payloadBits float64) float64 {
	bw := r.cfg.Net.BandwidthBPS
	theta := r.cfg.Net.Theta()
	f := r.cfg.Frame.Time(bw)
	if f <= theta {
		// The header returns only after a full circulation; the medium is
		// held for Θ regardless of the frame's own length.
		return theta
	}
	if payloadBits >= r.cfg.Frame.InfoBits {
		return f
	}
	// Short final frame: the transmitter may need to wait for the header.
	return math.Max((payloadBits+r.cfg.Frame.OvhdBits)/bw, theta)
}

func (r *pdpRun) nextArrivalTime() float64 {
	next := math.Inf(1)
	for _, st := range r.stations {
		if st.nextArrival < next {
			next = st.nextArrival
		}
	}
	return next
}

// highestPriorityPending returns the station index with the highest
// rate-monotonic priority pending frame, or -1. Shorter period wins; ties
// break by station index, matching the deterministic order the analysis
// assumes. Crashed stations cannot transmit; their queues wait.
func (r *pdpRun) highestPriorityPending(now float64) int {
	best := -1
	for i, st := range r.stations {
		if len(st.queue) == 0 || r.inj.Down(i, now) {
			continue
		}
		if best == -1 || st.stream.Period < r.stations[best].stream.Period {
			best = i
		}
	}
	return best
}

// anyPending reports whether any station holds a queued frame (including
// crashed stations whose service must wait for their restart).
func (r *pdpRun) anyPending() bool {
	for _, st := range r.stations {
		if len(st.queue) > 0 {
			return true
		}
	}
	return false
}

// advanceIdleToken rotates the free token for the time the medium sat
// idle, so the next capture pays a realistic partial walk.
func (r *pdpRun) advanceIdleToken(now float64) {
	if math.IsNaN(r.idleSince) {
		return
	}
	if h := r.hopTime(); h > 0 {
		hops := int((now - r.idleSince) / h)
		r.tokenPos = (r.tokenPos + hops) % r.cfg.Net.Stations
	}
	r.idleSince = math.NaN()
}

// service is the single medium process: at each invocation the medium is
// free; it picks the next frame (or asynchronous filler), occupies the
// medium, and reschedules itself at the completion instant.
func (r *pdpRun) service() {
	now := r.engine.Now()
	r.idle, r.idleWake = false, nil
	for i, st := range r.stations {
		i := i
		st.release(now, func(msg pendingMessage) {
			emit(r.cfg.Tracer, TraceEvent{Time: msg.arrival, Kind: TraceArrival, Station: i})
		})
	}

	// Ring reconfiguration: every station crash or restart up to now pauses
	// the whole ring for the beacon/bypass latency before service resumes.
	if bp := r.inj.TakeBypass(now); bp > 0 {
		r.recovery += bp
		emit(r.cfg.Tracer, TraceEvent{Time: now, Kind: TraceRecovery, Duration: bp})
		_, _ = r.engine.At(now+bp, r.service)
		return
	}

	target := r.highestPriorityPending(now)
	if target == -1 {
		if r.cfg.AsyncSaturated {
			r.serviceAsync(now)
			return
		}
		// Idle: wake at the next synchronous arrival — or at the next
		// station restart when pending frames sit at crashed stations.
		if math.IsNaN(r.idleSince) {
			r.idleSince = now
		}
		next := r.nextArrivalTime()
		if r.anyPending() {
			next = math.Min(next, r.inj.NextRestart(now))
		}
		r.idle = true
		if next <= r.horizon {
			// The only failure mode of At is scheduling in the past,
			// impossible for a future arrival.
			r.idleWake, _ = r.engine.At(next, r.service)
		}
		return
	}

	r.advanceIdleToken(now)
	st := r.stations[target]
	msg := &st.queue[0]

	var pass float64
	if r.cfg.TokenPass == PassAverageHalfTheta {
		// Charge exactly the analysis's average: Θ/2 per frame for the
		// standard protocol, Θ/2 per message (on its first frame) for the
		// modified one.
		switch {
		case r.cfg.Variant == core.Standard8025:
			pass = r.cfg.Net.Theta() / 2
		case msg.remainingBits == st.stream.LengthBits:
			pass = r.cfg.Net.Theta() / 2
		}
	} else {
		// Token travel from the previous transmitter to the target. Under
		// the standard protocol a free token is issued after every frame,
		// so even a back-to-back transmission by the same station pays a
		// full circulation; the modified protocol keeps the token when
		// the holder is still the highest-priority active station.
		hops := hopDistance(r.tokenPos, target, r.cfg.Net.Stations)
		if r.cfg.Variant == core.Standard8025 && hops == 0 && r.passStats.N() > 0 {
			hops = r.cfg.Net.Stations
		}
		pass = float64(hops) * r.hopTime()
	}
	r.tokenTime += pass
	r.passStats.Add(pass)
	r.tokenPos = target
	if pass > 0 {
		emit(r.cfg.Tracer, TraceEvent{Time: now, Kind: TraceTokenPass, Station: target, Duration: pass})
	}

	// A lost token is rediscovered by the claim/beacon process: the medium
	// is dead for the recovery duration before the frame goes out.
	var rec float64
	if r.inj.TokenLost(target) {
		rec = r.inj.RecoveryDuration()
		r.losses++
		r.recovery += rec
		emit(r.cfg.Tracer, TraceEvent{Time: now + pass, Kind: TraceRecovery, Station: target, Duration: rec})
	}

	payload := math.Min(msg.remainingBits, r.cfg.Frame.InfoBits)
	eff := r.effectiveFrameTime(payload)
	r.syncTime += eff
	corrupted := r.inj.FrameCorrupted(target)
	if corrupted {
		// The frame held the medium but failed its CRC; the payload stays
		// queued and retransmits on the next service.
		r.corrupted++
		emit(r.cfg.Tracer, TraceEvent{
			Time: now + pass + rec, Kind: TraceCorrupt, Station: target, Duration: eff, Detail: payload,
		})
	} else {
		msg.remainingBits -= payload
		emit(r.cfg.Tracer, TraceEvent{
			Time: now + pass + rec, Kind: TraceFrame, Station: target, Duration: eff, Detail: payload,
		})
	}
	finished := !corrupted && msg.remainingBits <= 0

	done := now + pass + rec + eff
	_, _ = r.engine.At(done, func() {
		if finished {
			completed := st.queue[0]
			st.queue = st.queue[1:]
			lateness := st.finish(completed, r.engine.Now())
			kind := TraceComplete
			if lateness > 0 {
				kind = TraceMiss
			}
			emit(r.cfg.Tracer, TraceEvent{
				Time: r.engine.Now(), Kind: kind, Station: target, Detail: lateness,
			})
			if r.onDone != nil {
				r.onDone(target, completed, r.engine.Now())
			}
		}
		r.service()
	})
}

// serviceAsync transmits one saturated asynchronous frame. The token moves
// one hop to the next (always-ready) asynchronous sender first.
func (r *pdpRun) serviceAsync(now float64) {
	r.advanceIdleToken(now)
	pass := r.hopTime()
	r.tokenTime += pass
	r.tokenPos = (r.tokenPos + 1) % r.cfg.Net.Stations

	eff := math.Max(r.cfg.Frame.Time(r.cfg.Net.BandwidthBPS), r.cfg.Net.Theta())
	r.asyncTime += eff
	emit(r.cfg.Tracer, TraceEvent{
		Time: now + pass, Kind: TraceAsync, Station: r.tokenPos,
		Duration: eff, Detail: r.cfg.Frame.InfoBits,
	})
	_, _ = r.engine.At(now+pass+eff, r.service)
}
