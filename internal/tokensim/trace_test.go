package tokensim

import (
	"strings"
	"testing"

	"ringsched/internal/core"
)

func TestCountingTracerPDP(t *testing.T) {
	var ct CountingTracer
	sim := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Standard8025,
		Workload: onePDPStream(16), // two frames
		Horizon:  0.1,
		Tracer:   &ct,
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatal("unexpected misses")
	}
	if got := ct.Counts[TraceFrame]; got != 2 {
		t.Errorf("frames traced = %d, want 2", got)
	}
	if got := ct.Counts[TraceComplete]; got != 1 {
		t.Errorf("completions traced = %d, want 1", got)
	}
	if got := ct.Counts[TraceArrival]; got != 1 {
		t.Errorf("arrivals traced = %d, want 1", got)
	}
	// Standard protocol: the second frame needed a full-token pass.
	if got := ct.Counts[TraceTokenPass]; got != 1 {
		t.Errorf("token passes traced = %d, want 1", got)
	}
	if got := ct.Counts[TraceMiss]; got != 0 {
		t.Errorf("misses traced = %d, want 0", got)
	}
}

func TestTracerObservesMisses(t *testing.T) {
	var ct CountingTracer
	sim := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: onePDPStream(2e6), // 2 s of payload per 1 s period
		Horizon:  3,
		Tracer:   &ct,
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses == 0 {
		t.Fatal("setup: expected misses")
	}
	if ct.Counts[TraceMiss] == 0 {
		t.Error("misses not traced")
	}
}

func TestCountingTracerTTP(t *testing.T) {
	var ct CountingTracer
	sim := ttpTinySim(36, 20e-6) // two visits to complete
	sim.Tracer = &ct
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatal("unexpected misses")
	}
	if got := ct.Counts[TraceFrame]; got != 2 {
		t.Errorf("frames traced = %d, want 2", got)
	}
	if got := ct.Counts[TraceComplete]; got != 1 {
		t.Errorf("completions traced = %d, want 1", got)
	}
	if got := ct.Counts[TraceArrival]; got != 1 {
		t.Errorf("arrivals traced = %d, want 1", got)
	}
}

func TestTracerTTPAsync(t *testing.T) {
	var ct CountingTracer
	sim := ttpTinySim(8, 20e-6)
	sim.AsyncSaturated = true
	sim.Horizon = 2e-3
	sim.Tracer = &ct
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if ct.Counts[TraceAsync] == 0 {
		t.Error("async frames not traced")
	}
}

func TestWriterTracer(t *testing.T) {
	var sb strings.Builder
	wt := &WriterTracer{W: &sb, Limit: 3}
	for i := 0; i < 10; i++ {
		wt.Trace(TraceEvent{Time: float64(i), Kind: TraceFrame, Station: i})
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != 3 {
		t.Errorf("wrote %d lines, want 3 (limit)", lines)
	}
	// Unlimited writer.
	sb.Reset()
	wt = &WriterTracer{W: &sb}
	for i := 0; i < 5; i++ {
		wt.Trace(TraceEvent{Time: float64(i), Kind: TraceTokenPass})
	}
	if strings.Count(sb.String(), "\n") != 5 {
		t.Errorf("unlimited writer wrote %d lines, want 5", strings.Count(sb.String(), "\n"))
	}
}

func TestTracerFunc(t *testing.T) {
	n := 0
	var tr Tracer = TracerFunc(func(TraceEvent) { n++ })
	tr.Trace(TraceEvent{})
	tr.Trace(TraceEvent{})
	if n != 2 {
		t.Errorf("TracerFunc called %d times, want 2", n)
	}
}

func TestTraceEventStrings(t *testing.T) {
	events := []TraceEvent{
		{Time: 1e-3, Kind: TraceArrival, Station: 3},
		{Time: 1e-3, Kind: TraceFrame, Station: 3, Duration: 1e-6, Detail: 512},
		{Time: 1e-3, Kind: TraceAsync, Station: 3, Duration: 1e-6, Detail: 512},
		{Time: 1e-3, Kind: TraceTokenPass, Station: 3, Duration: 1e-6},
		{Time: 1e-3, Kind: TraceComplete, Station: 3, Detail: -1e-3},
		{Time: 1e-3, Kind: TraceMiss, Station: 3, Detail: 2e-3},
	}
	for _, e := range events {
		if e.String() == "" {
			t.Errorf("%v: empty String()", e.Kind)
		}
		if !strings.Contains(e.String(), e.Kind.String()) {
			t.Errorf("String %q missing kind %q", e.String(), e.Kind)
		}
	}
	if TraceKind(99).String() == "" {
		t.Error("unknown kind should stringify")
	}
}
