package tokensim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ringsched/internal/core"
	"ringsched/internal/frame"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/ring"
	"ringsched/internal/sim"
	"ringsched/internal/stats"
)

// Errors returned by the TTP simulator.
var (
	ErrBadTTRT        = errors.New("tokensim: TTRT must be positive")
	ErrBadAllocations = errors.New("tokensim: one synchronous allocation per stream required")
)

// TTPSim simulates the timed token protocol with the real FDDI timer
// rules: every station runs a token rotation timer against TTRT; a station
// receiving an early token may send asynchronous traffic for the earliness
// (token holding time), a late token admits synchronous traffic only;
// synchronous transmission is always admitted up to the station's
// allocation h_i; an asynchronous frame in progress always completes
// (asynchronous overrun).
type TTPSim struct {
	// Net is the ring plant.
	Net ring.Config
	// SyncFrame supplies the per-frame overhead added to each synchronous
	// burst.
	SyncFrame frame.Spec
	// AsyncFrame is the (maximum-length) asynchronous frame.
	AsyncFrame frame.Spec
	// TTRT is the target token rotation time negotiated at ring
	// initialization.
	TTRT float64
	// Allocations holds the synchronous bandwidth h_i of each stream's
	// station, aligned with Workload.Streams.
	Allocations []float64
	// Workload supplies the synchronous streams and their phasing.
	Workload Workload
	// AsyncSaturated, when true, keeps every station's asynchronous queue
	// full, so all token earliness is consumed (plus overrun) — the
	// worst-case interference the analysis assumes.
	AsyncSaturated bool
	// Horizon is the simulated duration; zero picks a default (20 periods
	// of the slowest stream).
	Horizon float64
	// Tracer, when non-nil, observes every simulator event (arrivals,
	// frames, async bursts, completions).
	Tracer Tracer
	// Faults, when non-nil, injects token-loss failures.
	Faults *Faults
	// MaxEvents bounds the discrete events fired by one run; 0 means
	// unlimited. Exceeding it aborts with sim.ErrMaxEvents.
	MaxEvents int
	// Progress, when non-nil, observes event-loop advancement.
	Progress progress.Progress
}

// NewTTPSimFromAnalysis builds a simulator whose TTRT and synchronous
// allocations come from the Theorem 5.1 analyzer, so simulation validates
// exactly the configuration the analysis guarantees.
func NewTTPSimFromAnalysis(t core.TTP, m message.Set, w Workload) (TTPSim, error) {
	rep, err := t.Report(m)
	if err != nil {
		return TTPSim{}, err
	}
	alloc := make([]float64, len(rep.Streams))
	for i, sr := range rep.Streams {
		alloc[i] = sr.Allocation
	}
	return TTPSim{
		Net:         t.Net,
		SyncFrame:   t.SyncFrame,
		AsyncFrame:  t.AsyncFrame,
		TTRT:        rep.TTRT,
		Allocations: alloc,
		Workload:    w,
	}, nil
}

// ttpStation is the FDDI timer state of one ring station.
type ttpStation struct {
	// sync is nil for stations without a synchronous stream.
	sync *stationState
	// allocation is h_i (0 for pure asynchronous stations).
	allocation float64
	// timerStart is when the rotation timer last (re)started.
	timerStart float64
	// lastVisit is the previous token arrival, for rotation statistics.
	lastVisit float64
	visited   bool
}

// ttpRun is the mutable state of one run.
type ttpRun struct {
	cfg      TTPSim
	engine   sim.Engine
	stations []*ttpStation
	horizon  float64

	syncTime  float64
	asyncTime float64
	tokenTime float64
	rotation  stats.Running
	losses    int
	recovery  float64
}

// Run executes the simulation. It is the uncancelable convenience wrapper
// around RunContext.
func (c TTPSim) Run() (Result, error) {
	return c.RunContext(context.Background())
}

// RunContext is Run with cancellation: the event loop polls ctx
// periodically and aborts with ctx.Err() once it is canceled.
func (c TTPSim) RunContext(ctx context.Context) (Result, error) {
	if err := c.Net.Validate(); err != nil {
		return Result{}, err
	}
	if err := c.SyncFrame.Validate(); err != nil {
		return Result{}, err
	}
	if err := c.AsyncFrame.Validate(); err != nil {
		return Result{}, err
	}
	if err := c.Workload.Streams.Validate(); err != nil {
		return Result{}, err
	}
	if c.TTRT <= 0 || math.IsNaN(c.TTRT) {
		return Result{}, ErrBadTTRT
	}
	if len(c.Allocations) != len(c.Workload.Streams) {
		return Result{}, fmt.Errorf("%w: %d allocations for %d streams",
			ErrBadAllocations, len(c.Allocations), len(c.Workload.Streams))
	}
	if err := c.Faults.Validate(); err != nil {
		return Result{}, err
	}
	horizon := c.Horizon
	if horizon == 0 {
		horizon = horizonFor(c.Workload.Streams, 20)
	}
	if horizon <= 0 {
		return Result{}, ErrBadHorizon
	}

	r := &ttpRun{cfg: c, horizon: horizon}
	r.stations = make([]*ttpStation, c.Net.Stations)
	for i := range r.stations {
		r.stations[i] = &ttpStation{}
	}
	for i, s := range c.Workload.Streams {
		r.stations[i].sync = &stationState{stream: s, nextArrival: c.Workload.Offsets[i]}
		r.stations[i].allocation = c.Allocations[i]
	}

	// The token starts at station 0 at time 0 with all timers fresh.
	if _, err := r.engine.At(0, func() { r.tokenArrive(0) }); err != nil {
		return Result{}, err
	}
	if err := r.engine.RunUntilContext(ctx, horizon, runLoopOptions(c.MaxEvents, c.Progress)); err != nil {
		return Result{}, err
	}

	syncStates := make([]*stationState, len(c.Workload.Streams))
	for i := range c.Workload.Streams {
		syncStates[i] = r.stations[i].sync
	}
	stationResults, misses := collectStations(syncStates, horizon)
	res := Result{
		Protocol:       "FDDI",
		Horizon:        horizon,
		Stations:       stationResults,
		DeadlineMisses: misses,
		SyncTime:       r.syncTime,
		AsyncTime:      r.asyncTime,
		TokenTime:      r.tokenTime,
		RotationMean:   r.rotation.Mean(),
		RotationMax:    r.rotation.Max(),
		RotationN:      r.rotation.N(),
		TokenLosses:    r.losses,
		RecoveryTime:   r.recovery,
	}
	res.IdleTime = math.Max(0, horizon-res.SyncTime-res.AsyncTime-res.TokenTime-res.RecoveryTime)
	return res, nil
}

// hopTime spreads the token circulation time Θ uniformly over the hops.
func (r *ttpRun) hopTime() float64 {
	return r.cfg.Net.Theta() / float64(r.cfg.Net.Stations)
}

// tokenArrive services station idx and forwards the token.
func (r *ttpRun) tokenArrive(idx int) {
	now := r.engine.Now()
	st := r.stations[idx]

	// Rotation statistics and the rotation timer.
	if st.visited {
		r.rotation.Add(now - st.lastVisit)
	}
	st.lastVisit = now
	st.visited = true

	elapsed := now - st.timerStart
	var tht float64
	if elapsed < r.cfg.TTRT {
		// Early token: bank the earliness as asynchronous holding time
		// and restart the rotation timer.
		tht = r.cfg.TTRT - elapsed
		st.timerStart = now
	} else {
		// Late token: the rotation timer already expired (at
		// timerStart+TTRT) and restarted; it keeps running from its last
		// expiry, and no asynchronous traffic is admitted this visit.
		expiries := math.Max(1, math.Floor(elapsed/r.cfg.TTRT))
		st.timerStart += expiries * r.cfg.TTRT
	}

	busy := 0.0

	// Synchronous transmission: always admitted, up to the allocation.
	if st.sync != nil {
		st.sync.release(now, func(msg pendingMessage) {
			emit(r.cfg.Tracer, TraceEvent{Time: msg.arrival, Kind: TraceArrival, Station: idx})
		})
		busy += r.transmitSync(st, idx, now)
	}

	// Asynchronous transmission: only on an early token, for at most the
	// banked holding time, with one frame of overrun allowed.
	if r.cfg.AsyncSaturated && tht > 0 {
		fa := r.cfg.AsyncFrame.Time(r.cfg.Net.BandwidthBPS)
		for tht > 0 {
			r.asyncTime += fa
			emit(r.cfg.Tracer, TraceEvent{
				Time: now + busy, Kind: TraceAsync, Station: idx,
				Duration: fa, Detail: r.cfg.AsyncFrame.InfoBits,
			})
			busy += fa
			tht -= fa
		}
	}

	// Forward the token one hop; a lost token costs a recovery period
	// before the neighbor sees it again.
	hop := r.hopTime()
	r.tokenTime += hop
	lost := r.cfg.Faults.roll()
	if lost > 0 {
		r.losses++
		r.recovery += lost
	}
	next := (idx + 1) % r.cfg.Net.Stations
	at := now + busy + hop + lost
	if at <= r.horizon {
		_, _ = r.engine.At(at, func() { r.tokenArrive(next) })
	}
}

// transmitSync sends frames from the station's synchronous queue within
// its allocation and returns the medium time used. Each frame pays the
// per-frame overhead; messages complete when their last payload bit is
// sent.
func (r *ttpRun) transmitSync(st *ttpStation, idx int, now float64) float64 {
	bw := r.cfg.Net.BandwidthBPS
	fovhd := r.cfg.SyncFrame.OvhdTime(bw)
	budget := st.allocation
	used := 0.0
	for len(st.sync.queue) > 0 && budget > fovhd {
		msg := &st.sync.queue[0]
		payloadTime := math.Min(msg.remainingBits/bw, budget-fovhd)
		frameTime := fovhd + payloadTime
		emit(r.cfg.Tracer, TraceEvent{
			Time: now + used, Kind: TraceFrame, Station: idx,
			Duration: frameTime, Detail: payloadTime * bw,
		})
		budget -= frameTime
		used += frameTime
		msg.remainingBits -= payloadTime * bw
		if msg.remainingBits <= 1e-9 {
			completed := st.sync.queue[0]
			st.sync.queue = st.sync.queue[1:]
			lateness := st.sync.finish(completed, now+used)
			kind := TraceComplete
			if lateness > 0 {
				kind = TraceMiss
			}
			emit(r.cfg.Tracer, TraceEvent{
				Time: now + used, Kind: kind, Station: idx, Detail: lateness,
			})
		}
	}
	r.syncTime += used
	return used
}
