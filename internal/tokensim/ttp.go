package tokensim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ringsched/internal/core"
	"ringsched/internal/faults"
	"ringsched/internal/frame"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/ring"
	"ringsched/internal/sim"
	"ringsched/internal/stats"
	"ringsched/internal/trace"
)

// Errors returned by the TTP simulator.
var (
	ErrBadTTRT        = errors.New("tokensim: TTRT must be positive")
	ErrBadAllocations = errors.New("tokensim: one synchronous allocation per stream required")
)

// TTPSim simulates the timed token protocol with the real FDDI timer
// rules: every station runs a token rotation timer against TTRT; a station
// receiving an early token may send asynchronous traffic for the earliness
// (token holding time), a late token admits synchronous traffic only;
// synchronous transmission is always admitted up to the station's
// allocation h_i; an asynchronous frame in progress always completes
// (asynchronous overrun).
type TTPSim struct {
	// Net is the ring plant.
	Net ring.Config
	// SyncFrame supplies the per-frame overhead added to each synchronous
	// burst.
	SyncFrame frame.Spec
	// AsyncFrame is the (maximum-length) asynchronous frame.
	AsyncFrame frame.Spec
	// TTRT is the target token rotation time negotiated at ring
	// initialization.
	TTRT float64
	// Allocations holds the synchronous bandwidth h_i of each stream's
	// station, aligned with Workload.Streams.
	Allocations []float64
	// Workload supplies the synchronous streams and their phasing.
	Workload Workload
	// AsyncSaturated, when true, keeps every station's asynchronous queue
	// full, so all token earliness is consumed (plus overrun) — the
	// worst-case interference the analysis assumes.
	AsyncSaturated bool
	// Horizon is the simulated duration; zero picks a default (20 periods
	// of the slowest stream).
	Horizon float64
	// Tracer, when non-nil, observes every simulator event (arrivals,
	// frames, async bursts, completions).
	Tracer Tracer
	// Faults, when non-nil, injects token-loss failures.
	Faults *Faults
	// MaxEvents bounds the discrete events fired by one run; 0 means
	// unlimited. Exceeding it aborts with sim.ErrMaxEvents.
	MaxEvents int
	// Progress, when non-nil, observes event-loop advancement.
	Progress progress.Progress
}

// NewTTPSimFromAnalysis builds a simulator whose TTRT and synchronous
// allocations come from the Theorem 5.1 analyzer, so simulation validates
// exactly the configuration the analysis guarantees.
func NewTTPSimFromAnalysis(t core.TTP, m message.Set, w Workload) (TTPSim, error) {
	rep, err := t.Report(m)
	if err != nil {
		return TTPSim{}, err
	}
	alloc := make([]float64, len(rep.Streams))
	for i, sr := range rep.Streams {
		alloc[i] = sr.Allocation
	}
	return TTPSim{
		Net:         t.Net,
		SyncFrame:   t.SyncFrame,
		AsyncFrame:  t.AsyncFrame,
		TTRT:        rep.TTRT,
		Allocations: alloc,
		Workload:    w,
	}, nil
}

// ttpStation is the FDDI timer state of one ring station.
type ttpStation struct {
	// sync is nil for stations without a synchronous stream.
	sync *stationState
	// allocation is h_i (0 for pure asynchronous stations).
	allocation float64
	// timerStart is when the rotation timer last (re)started.
	timerStart float64
	// lastVisit is the previous token arrival, for rotation statistics.
	lastVisit float64
	visited   bool
	// suppress is the FDDI late-counter effect of a claim/beacon recovery:
	// when a recovery makes the token later than TTRT against this
	// station's rotation timer, the station's synchronous allocation is
	// suppressed for its next visit (one rotation), then the flag clears.
	suppress bool
}

// ttpRun is the mutable state of one run.
type ttpRun struct {
	cfg      TTPSim
	engine   *sim.Engine
	stations []*ttpStation
	horizon  float64

	// onDone, when non-nil, observes every completed message — the hook
	// the topology simulator uses to hand messages to the next ring.
	onDone func(station int, msg pendingMessage, at float64)

	syncTime  float64
	asyncTime float64
	tokenTime float64
	rotation  stats.Running

	// inj is the fault injector for this run; nil on a healthy ring.
	inj       *faults.Injector
	losses    int
	recovery  float64
	corrupted int
}

// Run executes the simulation. It is the uncancelable convenience wrapper
// around RunContext.
func (c TTPSim) Run() (Result, error) {
	return c.RunContext(context.Background())
}

// validate checks the configuration and resolves the simulation horizon.
func (c TTPSim) validate() (float64, error) {
	if err := c.Net.Validate(); err != nil {
		return 0, err
	}
	if err := c.SyncFrame.Validate(); err != nil {
		return 0, err
	}
	if err := c.AsyncFrame.Validate(); err != nil {
		return 0, err
	}
	if err := c.Workload.Streams.Validate(); err != nil {
		return 0, err
	}
	if c.TTRT <= 0 || math.IsNaN(c.TTRT) {
		return 0, ErrBadTTRT
	}
	if len(c.Allocations) != len(c.Workload.Streams) {
		return 0, fmt.Errorf("%w: %d allocations for %d streams",
			ErrBadAllocations, len(c.Allocations), len(c.Workload.Streams))
	}
	if err := c.Faults.Validate(); err != nil {
		return 0, err
	}
	horizon := c.Horizon
	if horizon == 0 {
		horizon = horizonFor(c.Workload.Streams, 20)
	}
	if horizon <= 0 {
		return 0, ErrBadHorizon
	}
	return horizon, nil
}

// newTTPRun builds the run state on the given engine — the run's own for a
// standalone simulation, a shared one when composed into a topology.
func newTTPRun(c TTPSim, engine *sim.Engine, horizon float64) *ttpRun {
	r := &ttpRun{cfg: c, engine: engine, horizon: horizon}
	r.inj = c.Faults.Injector(c.Net.Stations, c.Net.Theta(), horizon)
	r.stations = make([]*ttpStation, c.Net.Stations)
	for i := range r.stations {
		r.stations[i] = &ttpStation{}
	}
	for i, s := range c.Workload.Streams {
		r.stations[i].sync = &stationState{stream: s, nextArrival: c.Workload.Offsets[i]}
		r.stations[i].allocation = c.Allocations[i]
	}
	return r
}

// start releases the token at station 0 at time 0 with all timers fresh.
func (r *ttpRun) start() error {
	_, err := r.engine.At(0, func() { r.tokenArrive(0) })
	return err
}

// collect summarizes the run after the event loop has drained.
func (r *ttpRun) collect() Result {
	syncStates := make([]*stationState, len(r.cfg.Workload.Streams))
	for i := range r.cfg.Workload.Streams {
		syncStates[i] = r.stations[i].sync
	}
	stationResults, misses := collectStations(syncStates, r.horizon)
	res := Result{
		Protocol:        "FDDI",
		Horizon:         r.horizon,
		Stations:        stationResults,
		DeadlineMisses:  misses,
		SyncTime:        r.syncTime,
		AsyncTime:       r.asyncTime,
		TokenTime:       r.tokenTime,
		RotationMean:    r.rotation.Mean(),
		RotationMax:     r.rotation.Max(),
		RotationN:       r.rotation.N(),
		TokenLosses:     r.losses,
		RecoveryTime:    r.recovery,
		CorruptedFrames: r.corrupted,
		Crashes:         r.inj.CrashCount(),
	}
	res.IdleTime = math.Max(0, r.horizon-res.SyncTime-res.AsyncTime-res.TokenTime-res.RecoveryTime)
	return res
}

// RunContext is Run with cancellation: the event loop polls ctx
// periodically and aborts with ctx.Err() once it is canceled.
func (c TTPSim) RunContext(ctx context.Context) (Result, error) {
	horizon, err := c.validate()
	if err != nil {
		return Result{}, err
	}
	r := newTTPRun(c, &sim.Engine{}, horizon)

	ctx, sp := trace.Start(ctx, "sim.ttp")
	defer sp.End()
	sp.SetAttr("stations", c.Net.Stations)
	sp.SetAttr("ttrtSec", c.TTRT)
	sp.SetAttr("horizonSec", horizon)

	if err := r.start(); err != nil {
		sp.SetError(err)
		return Result{}, err
	}
	if err := r.engine.RunUntilContext(ctx, horizon, runLoopOptions(c.MaxEvents, c.Progress)); err != nil {
		sp.SetError(err)
		return Result{}, err
	}

	res := r.collect()
	sp.SetAttr("misses", res.DeadlineMisses)
	sp.SetAttr("rotationMeanSec", res.RotationMean)
	return res, nil
}

// inject delivers an externally arrived message — a bridged hand-off from
// another ring — to station idx's synchronous queue. The circulating token
// picks it up on its next visit; no kick is needed.
func (r *ttpRun) inject(idx int, msg pendingMessage) {
	r.stations[idx].sync.push(msg)
	emit(r.cfg.Tracer, TraceEvent{Time: msg.arrival, Kind: TraceArrival, Station: idx})
}

// setDone installs the completion hook (topology composition only).
func (r *ttpRun) setDone(fn func(station int, msg pendingMessage, at float64)) {
	r.onDone = fn
}

// setFlow tags station idx's messages with a topology flow index.
func (r *ttpRun) setFlow(idx, flow int) {
	r.stations[idx].sync.flow = flow
}

// hopTime spreads the token circulation time Θ uniformly over the hops.
func (r *ttpRun) hopTime() float64 {
	return r.cfg.Net.Theta() / float64(r.cfg.Net.Stations)
}

// tokenArrive services station idx and forwards the token.
func (r *ttpRun) tokenArrive(idx int) {
	now := r.engine.Now()
	st := r.stations[idx]

	// Ring reconfiguration: crashes and restarts up to now pause the whole
	// ring for the beacon/bypass latency, then the visit resumes.
	if bp := r.inj.TakeBypass(now); bp > 0 {
		r.recovery += bp
		emit(r.cfg.Tracer, TraceEvent{Time: now, Kind: TraceRecovery, Station: idx, Duration: bp})
		_, _ = r.engine.At(now+bp, func() { r.tokenArrive(idx) })
		return
	}

	// A crashed station is bypassed: the token passes straight through,
	// its rotation timer frozen until it rejoins.
	if r.inj.Down(idx, now) {
		r.forwardToken(idx, now, 0)
		return
	}

	// Rotation statistics and the rotation timer.
	if st.visited {
		r.rotation.Add(now - st.lastVisit)
	}
	st.lastVisit = now
	st.visited = true

	elapsed := now - st.timerStart
	var tht float64
	if elapsed < r.cfg.TTRT {
		// Early token: bank the earliness as asynchronous holding time
		// and restart the rotation timer.
		tht = r.cfg.TTRT - elapsed
		st.timerStart = now
	} else {
		// Late token: the rotation timer already expired (at
		// timerStart+TTRT) and restarted; it keeps running from its last
		// expiry, and no asynchronous traffic is admitted this visit.
		expiries := math.Max(1, math.Floor(elapsed/r.cfg.TTRT))
		st.timerStart += expiries * r.cfg.TTRT
		emit(r.cfg.Tracer, TraceEvent{
			Time: now, Kind: TraceLateCount, Station: idx,
			Detail: elapsed - r.cfg.TTRT,
		})
	}

	busy := 0.0

	// Synchronous transmission: always admitted, up to the allocation —
	// unless a claim/beacon recovery made the token late against this
	// station's timer, which suppresses the allocation for one rotation
	// (the FDDI late-counter effect).
	if st.sync != nil {
		st.sync.release(now, func(msg pendingMessage) {
			emit(r.cfg.Tracer, TraceEvent{Time: msg.arrival, Kind: TraceArrival, Station: idx})
		})
		if st.suppress {
			st.suppress = false
		} else {
			busy += r.transmitSync(st, idx, now)
		}
	}

	// Asynchronous transmission: only on an early token, for at most the
	// banked holding time, with one frame of overrun allowed.
	if r.cfg.AsyncSaturated && tht > 0 {
		fa := r.cfg.AsyncFrame.Time(r.cfg.Net.BandwidthBPS)
		for tht > 0 {
			r.asyncTime += fa
			emit(r.cfg.Tracer, TraceEvent{
				Time: now + busy, Kind: TraceAsync, Station: idx,
				Duration: fa, Detail: r.cfg.AsyncFrame.InfoBits,
			})
			busy += fa
			tht -= fa
		}
	}

	r.forwardToken(idx, now, busy)
}

// forwardToken moves the token one hop after busy seconds of service. A
// token lost on the hop is rebuilt by the claim/beacon process: the medium
// is dead for the recovery duration and every station whose rotation timer
// the recovery pushes past TTRT has its synchronous allocation suppressed
// for one rotation.
func (r *ttpRun) forwardToken(idx int, now, busy float64) {
	hop := r.hopTime()
	r.tokenTime += hop
	emit(r.cfg.Tracer, TraceEvent{Time: now + busy, Kind: TraceTokenPass, Station: idx, Duration: hop})
	var rec float64
	if r.inj.TokenLost(idx) {
		rec = r.inj.RecoveryDuration()
		r.losses++
		r.recovery += rec
		emit(r.cfg.Tracer, TraceEvent{Time: now + busy + hop, Kind: TraceRecovery, Station: idx, Duration: rec})
		r.markLate(now + busy + hop + rec)
	}
	next := (idx + 1) % r.cfg.Net.Stations
	at := now + busy + hop + rec
	if at <= r.horizon {
		_, _ = r.engine.At(at, func() { r.tokenArrive(next) })
	}
}

// markLate raises the late-counter suppression flag of every station whose
// rotation timer will have expired by the time recovery completes at
// recoveryEnd.
func (r *ttpRun) markLate(recoveryEnd float64) {
	for i, st := range r.stations {
		if recoveryEnd-st.timerStart >= r.cfg.TTRT {
			st.suppress = true
			emit(r.cfg.Tracer, TraceEvent{
				Time: recoveryEnd, Kind: TraceLateCount, Station: i,
				Detail: recoveryEnd - st.timerStart - r.cfg.TTRT,
			})
		}
	}
}

// transmitSync sends frames from the station's synchronous queue within
// its allocation and returns the medium time used. Each frame pays the
// per-frame overhead; messages complete when their last payload bit is
// sent.
func (r *ttpRun) transmitSync(st *ttpStation, idx int, now float64) float64 {
	bw := r.cfg.Net.BandwidthBPS
	fovhd := r.cfg.SyncFrame.OvhdTime(bw)
	budget := st.allocation
	used := 0.0
	for len(st.sync.queue) > 0 && budget > fovhd {
		msg := &st.sync.queue[0]
		payloadTime := math.Min(msg.remainingBits/bw, budget-fovhd)
		frameTime := fovhd + payloadTime
		budget -= frameTime
		used += frameTime
		if r.inj.FrameCorrupted(idx) {
			// The frame spent the budget but failed its CRC; the payload
			// stays queued for retransmission on a later visit.
			r.corrupted++
			emit(r.cfg.Tracer, TraceEvent{
				Time: now + used - frameTime, Kind: TraceCorrupt, Station: idx,
				Duration: frameTime, Detail: payloadTime * bw,
			})
			continue
		}
		emit(r.cfg.Tracer, TraceEvent{
			Time: now + used - frameTime, Kind: TraceFrame, Station: idx,
			Duration: frameTime, Detail: payloadTime * bw,
		})
		msg.remainingBits -= payloadTime * bw
		if msg.remainingBits <= 1e-9 {
			completed := st.sync.queue[0]
			st.sync.queue = st.sync.queue[1:]
			lateness := st.sync.finish(completed, now+used)
			kind := TraceComplete
			if lateness > 0 {
				kind = TraceMiss
			}
			emit(r.cfg.Tracer, TraceEvent{
				Time: now + used, Kind: kind, Station: idx, Detail: lateness,
			})
			if r.onDone != nil {
				r.onDone(idx, completed, now+used)
			}
		}
	}
	r.syncTime += used
	return used
}
