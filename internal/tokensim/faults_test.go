package tokensim

import (
	"errors"
	"math/rand"
	"testing"

	"ringsched/internal/core"
)

func TestFaultsValidate(t *testing.T) {
	var nilFaults *Faults
	if err := nilFaults.Validate(); err != nil {
		t.Errorf("nil faults: %v", err)
	}
	if err := (&Faults{TokenLossProb: -0.1}).Validate(); err == nil {
		t.Error("negative probability accepted")
	}
	if err := (&Faults{TokenLossProb: 1.5}).Validate(); err == nil {
		t.Error("probability > 1 accepted")
	}
	if err := (&Faults{TokenLossProb: 0.1, RecoveryTime: -1, Rng: rand.New(rand.NewSource(1))}).Validate(); err == nil {
		t.Error("negative recovery accepted")
	}
	if err := (&Faults{TokenLossProb: 0.1, RecoveryTime: 1e-3}).Validate(); !errors.Is(err, ErrFaultsNeedRand) {
		t.Errorf("missing rng: %v, want ErrFaultsNeedRand", err)
	}
	ok := &Faults{TokenLossProb: 0.1, RecoveryTime: 1e-3, Rng: rand.New(rand.NewSource(1))}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid faults rejected: %v", err)
	}
}

func TestFaultsRoll(t *testing.T) {
	var nilFaults *Faults
	if nilFaults.roll() != 0 {
		t.Error("nil faults rolled a loss")
	}
	never := &Faults{TokenLossProb: 0}
	if never.roll() != 0 {
		t.Error("zero probability rolled a loss")
	}
	always := &Faults{TokenLossProb: 1, RecoveryTime: 5e-3, Rng: rand.New(rand.NewSource(1))}
	if always.roll() != 5e-3 {
		t.Error("certain loss did not charge recovery")
	}
}

func TestPDPSimTokenLoss(t *testing.T) {
	// Certain loss with a recovery as long as the period: every deadline
	// must fail; with no faults, none do.
	base := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: onePDPStream(8),
		Horizon:  5,
	}
	clean, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if clean.DeadlineMisses != 0 || clean.TokenLosses != 0 {
		t.Fatalf("clean run: misses=%d losses=%d", clean.DeadlineMisses, clean.TokenLosses)
	}

	faulty := base
	faulty.Faults = &Faults{TokenLossProb: 1, RecoveryTime: 1.5, Rng: rand.New(rand.NewSource(2))}
	res, err := faulty.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TokenLosses == 0 {
		t.Fatal("no losses recorded under certain loss")
	}
	if res.RecoveryTime == 0 {
		t.Fatal("no recovery time recorded")
	}
	if res.DeadlineMisses == 0 {
		t.Error("period-length recoveries should miss deadlines")
	}
}

func TestTTPSimTokenLossDegradesGracefully(t *testing.T) {
	// Rare, short losses on a lightly loaded ring: recovery is charged
	// but deadlines still hold (the slack absorbs it).
	sim := ttpTinySim(8, 20e-6)
	sim.Workload.Streams[0].Period = 10e-3
	sim.Horizon = 1
	sim.Faults = &Faults{
		TokenLossProb: 0.001,
		RecoveryTime:  50e-6,
		Rng:           rand.New(rand.NewSource(3)),
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TokenLosses == 0 {
		t.Fatal("expected some losses over ~1s of visits")
	}
	if res.DeadlineMisses != 0 {
		t.Errorf("light faults on a light load missed %d deadlines", res.DeadlineMisses)
	}
}

func TestTTPSimTokenLossSevere(t *testing.T) {
	// Frequent long recoveries must break deadlines.
	sim := ttpTinySim(8, 20e-6)
	sim.Workload.Streams[0].Period = 1e-3
	sim.Horizon = 0.5
	sim.Faults = &Faults{
		TokenLossProb: 0.5,
		RecoveryTime:  2e-3,
		Rng:           rand.New(rand.NewSource(4)),
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses == 0 {
		t.Error("severe faults missed no deadlines")
	}
}

func TestSimRejectsInvalidFaults(t *testing.T) {
	pdp := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: onePDPStream(8),
		Faults:   &Faults{TokenLossProb: 0.5},
	}
	if _, err := pdp.Run(); !errors.Is(err, ErrFaultsNeedRand) {
		t.Errorf("PDP: %v, want ErrFaultsNeedRand", err)
	}
	ttp := ttpTinySim(8, 20e-6)
	ttp.Faults = &Faults{TokenLossProb: 2}
	if _, err := ttp.Run(); err == nil {
		t.Error("TTP: invalid faults accepted")
	}
}
