package tokensim

import (
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/faults"
)

func TestFaultsValidate(t *testing.T) {
	var nilFaults *Faults
	if err := nilFaults.Validate(); err != nil {
		t.Errorf("nil faults: %v", err)
	}
	if err := (&Faults{TokenLossProb: -0.1}).Validate(); err == nil {
		t.Error("negative probability accepted")
	}
	if err := (&Faults{TokenLossProb: 1.5}).Validate(); err == nil {
		t.Error("probability > 1 accepted")
	}
	if err := (&Faults{Recovery: faults.Recovery{Fixed: -1}}).Validate(); err == nil {
		t.Error("negative recovery accepted")
	}
	// Seedless models are fine: substreams derive from Seed's zero value.
	ok := &Faults{TokenLossProb: 0.1, Recovery: faults.Recovery{Fixed: 1e-3}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid faults rejected: %v", err)
	}
}

func TestPDPSimTokenLoss(t *testing.T) {
	// Certain loss with a recovery as long as the period: every deadline
	// must fail; with no faults, none do.
	base := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: onePDPStream(8),
		Horizon:  5,
	}
	clean, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if clean.DeadlineMisses != 0 || clean.TokenLosses != 0 {
		t.Fatalf("clean run: misses=%d losses=%d", clean.DeadlineMisses, clean.TokenLosses)
	}

	faulty := base
	faulty.Faults = &Faults{TokenLossProb: 1, Recovery: faults.Recovery{Fixed: 1.5}, Seed: 2}
	res, err := faulty.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TokenLosses == 0 {
		t.Fatal("no losses recorded under certain loss")
	}
	if res.RecoveryTime == 0 {
		t.Fatal("no recovery time recorded")
	}
	if res.DeadlineMisses == 0 {
		t.Error("period-length recoveries should miss deadlines")
	}
}

func TestPDPSimEventDrivenRecoveryScalesWithTheta(t *testing.T) {
	// The zero-value Recovery charges Detect + DefaultClaimRounds·Θ per
	// loss, so total recovery must equal losses × that duration.
	sim := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: onePDPStream(8),
		Horizon:  5,
		Faults:   &Faults{TokenLossProb: 1, Seed: 9},
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TokenLosses == 0 {
		t.Fatal("no losses under certain loss")
	}
	per := float64(faults.DefaultClaimRounds) * sim.Net.Theta()
	want := float64(res.TokenLosses) * per
	if diff := res.RecoveryTime - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("recovery %v, want %d × %v = %v", res.RecoveryTime, res.TokenLosses, per, want)
	}
}

func TestPDPSimCorruptionForcesRetransmission(t *testing.T) {
	// A Bernoulli channel with certain corruption never delivers a frame:
	// every message must miss, and corrupted frames must be counted.
	sim := PDPSim{
		Net:       tinyPlant(),
		Frame:     tinyFrame(),
		Variant:   core.Modified8025,
		Workload:  onePDPStream(8),
		Horizon:   2,
		MaxEvents: 2_000_000,
		Faults: &Faults{
			Channel: faults.Channel{Kind: faults.ChannelBernoulli, CorruptProb: 1},
			Seed:    4,
		},
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptedFrames == 0 {
		t.Fatal("no corrupted frames under certain corruption")
	}
	if res.DeadlineMisses == 0 {
		t.Error("total corruption delivered a message on time")
	}
	if res.TokenLosses != 0 {
		t.Error("corruption-only model lost tokens")
	}
}

func TestTTPSimTokenLossDegradesGracefully(t *testing.T) {
	// Rare, short losses on a lightly loaded ring: recovery is charged
	// but deadlines still hold (the slack absorbs it).
	sim := ttpTinySim(8, 20e-6)
	sim.Workload.Streams[0].Period = 10e-3
	sim.Horizon = 1
	sim.Faults = &Faults{
		TokenLossProb: 0.001,
		Recovery:      faults.Recovery{Fixed: 50e-6},
		Seed:          3,
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TokenLosses == 0 {
		t.Fatal("expected some losses over ~1s of visits")
	}
	if res.DeadlineMisses != 0 {
		t.Errorf("light faults on a light load missed %d deadlines", res.DeadlineMisses)
	}
}

func TestTTPSimTokenLossSevere(t *testing.T) {
	// Frequent long recoveries must break deadlines.
	sim := ttpTinySim(8, 20e-6)
	sim.Workload.Streams[0].Period = 1e-3
	sim.Horizon = 0.5
	sim.Faults = &Faults{
		TokenLossProb: 0.5,
		Recovery:      faults.Recovery{Fixed: 2e-3},
		Seed:          4,
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses == 0 {
		t.Error("severe faults missed no deadlines")
	}
}

func TestTTPSimLateCounterSuppression(t *testing.T) {
	// With certain loss and a recovery longer than TTRT, every token
	// forward triggers a recovery that pushes every rotation timer past
	// TTRT, so each visit after the first finds its synchronous allocation
	// suppressed (FDDI late-counter semantics). Only the message served on
	// the very first visit can finish; everything else backlogs. A late
	// token *without* suppression would still admit synchronous traffic,
	// so a starved queue is the direct observable of the late counter.
	sim := ttpTinySim(8, 20e-6)
	sim.Workload.Streams[0].Period = 1e-3
	sim.Horizon = 0.5
	sim.Faults = &Faults{
		TokenLossProb: 1,
		Recovery:      faults.Recovery{Fixed: 2 * sim.TTRT},
		Seed:          12,
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TokenLosses == 0 {
		t.Fatal("no losses recorded")
	}
	finished := res.Stations[0].Completed + res.Stations[0].Missed
	if finished > 1 {
		t.Errorf("suppressed station finished %d messages, want ≤ 1", finished)
	}
	if res.DeadlineMisses == 0 {
		t.Error("starved station missed no deadlines")
	}
}

func TestCrashedStationStopsTransmitting(t *testing.T) {
	// A station that is down for most of the horizon cannot keep its
	// deadlines; the crash count and bypass recovery must be reported.
	sim := ttpTinySim(8, 20e-6)
	sim.Workload.Streams[0].Period = 1e-3
	sim.Horizon = 0.5
	sim.Faults = &Faults{
		Crash: faults.Crash{Rate: 20, MeanDowntime: 50e-3, Bypass: 1e-4},
		Seed:  6,
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("no crashes at rate 20/s over 0.5s")
	}
	if res.RecoveryTime == 0 {
		t.Error("crash transitions charged no bypass time")
	}
	if res.DeadlineMisses == 0 {
		t.Error("long downtimes missed no deadlines")
	}
}

func TestSimRejectsInvalidFaults(t *testing.T) {
	pdp := PDPSim{
		Net:      tinyPlant(),
		Frame:    tinyFrame(),
		Variant:  core.Modified8025,
		Workload: onePDPStream(8),
		Faults:   &Faults{TokenLossProb: 1.5},
	}
	if _, err := pdp.Run(); err == nil {
		t.Error("PDP: invalid faults accepted")
	}
	ttp := ttpTinySim(8, 20e-6)
	ttp.Faults = &Faults{TokenLossProb: 2}
	if _, err := ttp.Run(); err == nil {
		t.Error("TTP: invalid faults accepted")
	}
}
