// Package tokensim provides operational (discrete-event) simulators for the
// two MAC protocols analyzed in the paper: the priority driven protocol of
// IEEE 802.5 (standard and modified variants) and the timed token protocol
// of FDDI.
//
// The simulators share the analytical model's abstractions — frame-granular
// medium occupancy, Section 4.3 effective frame times, token walk time
// distributed uniformly around the ring — and exist to validate the
// schedulability criteria: a set the analysis guarantees must not miss
// deadlines in simulation, under worst-case phasing and saturated
// asynchronous interference.
package tokensim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"ringsched/internal/message"
	"ringsched/internal/stats"
)

// Errors returned by workload construction and the simulators.
var (
	ErrTooManyStreams = errors.New("tokensim: more streams than stations")
	ErrBadHorizon     = errors.New("tokensim: horizon must be positive")
	ErrNilRandPhases  = errors.New("tokensim: random phasing requires a non-nil *rand.Rand")
)

// Phasing selects the relative arrival offsets of the streams.
type Phasing int

const (
	// PhasingSynchronized releases the first message of every stream at
	// time zero — the critical instant the analyses assume.
	PhasingSynchronized Phasing = iota + 1
	// PhasingRandom draws each stream's initial offset uniformly from
	// [0, period).
	PhasingRandom
)

// Workload binds message streams to ring stations and fixes their phasing.
type Workload struct {
	// Streams holds one entry per station that carries synchronous
	// traffic; stream i is attached to station i.
	Streams message.Set
	// Offsets holds the first-arrival time of each stream.
	Offsets []float64
}

// NewWorkload attaches the set's streams to stations 0..len-1 of a ring
// with at least that many stations, with the requested phasing.
func NewWorkload(m message.Set, stations int, phasing Phasing, rng *rand.Rand) (Workload, error) {
	if err := m.Validate(); err != nil {
		return Workload{}, err
	}
	if len(m) > stations {
		return Workload{}, fmt.Errorf("%w: %d > %d", ErrTooManyStreams, len(m), stations)
	}
	w := Workload{Streams: m.Clone(), Offsets: make([]float64, len(m))}
	if phasing == PhasingRandom {
		if rng == nil {
			return Workload{}, ErrNilRandPhases
		}
		for i, s := range w.Streams {
			w.Offsets[i] = rng.Float64() * s.Period
		}
	}
	return w, nil
}

// pendingMessage is one queued synchronous message instance. flow and
// source carry its topology provenance — the flow index it belongs to and
// its arrival time at the source ring — so a bridged hand-off keeps its
// end-to-end deadline; standalone runs leave them at their zero values.
type pendingMessage struct {
	arrival       float64
	deadline      float64
	remainingBits float64
	flow          int
	source        float64
}

// stationState tracks one station's synchronous queue and statistics.
type stationState struct {
	stream message.Stream
	// flow is the topology flow index of locally released messages (zero
	// outside topology composition).
	flow  int
	queue []pendingMessage
	// nextArrival is the release time of the next message instance.
	nextArrival float64
	// completed/missed count finished messages by deadline outcome;
	// a message that finishes late counts as missed.
	completed int
	missed    int
	// response accumulates response times of finished messages.
	response stats.Running
	// maxLateness is the largest (completion − deadline) observed; zero
	// or negative means all deadlines met.
	maxLateness float64
	// maxQueue is the deepest backlog of simultaneously pending messages.
	maxQueue int
}

// release enqueues every message instance due by now. onRelease, when
// non-nil, observes each released message (used for tracing).
func (s *stationState) release(now float64, onRelease func(pendingMessage)) {
	for s.nextArrival <= now {
		msg := pendingMessage{
			arrival:       s.nextArrival,
			deadline:      s.nextArrival + s.stream.Period,
			remainingBits: s.stream.LengthBits,
			flow:          s.flow,
			source:        s.nextArrival,
		}
		s.push(msg)
		s.nextArrival += s.stream.Period
		if onRelease != nil {
			onRelease(msg)
		}
	}
}

// push enqueues one message and tracks the backlog high-water mark.
func (s *stationState) push(msg pendingMessage) {
	s.queue = append(s.queue, msg)
	if len(s.queue) > s.maxQueue {
		s.maxQueue = len(s.queue)
	}
}

// finish records a completed message and returns its lateness (positive
// when the deadline was missed).
func (s *stationState) finish(msg pendingMessage, now float64) (lateness float64) {
	resp := now - msg.arrival
	s.response.Add(resp)
	lateness = now - msg.deadline
	if lateness > s.maxLateness {
		s.maxLateness = lateness
	}
	if lateness > 0 {
		s.missed++
	} else {
		s.completed++
	}
	return lateness
}

// StationResult summarizes one station's simulation outcome.
type StationResult struct {
	// Station is the ring position.
	Station int
	// Stream echoes the attached stream.
	Stream message.Stream
	// Completed counts messages that met their deadline.
	Completed int
	// Missed counts messages that finished after their deadline.
	Missed int
	// Backlogged counts messages still queued (or in progress) at the
	// horizon whose deadlines had already passed.
	Backlogged int
	// MaxLateness is the worst completion − deadline in seconds (≤ 0 when
	// every deadline was met).
	MaxLateness float64
	// MeanResponse and MaxResponse summarize response times of finished
	// messages.
	MeanResponse float64
	MaxResponse  float64
	// MaxQueue is the deepest backlog of simultaneously pending messages
	// observed at the station — 1 means every message finished before
	// its successor arrived.
	MaxQueue int
}

// Result is the outcome of one simulation run.
type Result struct {
	// Protocol names the simulated MAC.
	Protocol string
	// Horizon is the simulated duration in seconds.
	Horizon float64
	// Stations holds per-station outcomes for stations carrying streams.
	Stations []StationResult
	// DeadlineMisses is the total missed (finished-late plus backlogged
	// past-deadline) messages.
	DeadlineMisses int
	// SyncTime, AsyncTime, TokenTime and IdleTime decompose medium
	// occupancy over the horizon.
	SyncTime  float64
	AsyncTime float64
	TokenTime float64
	IdleTime  float64
	// Rotations summarizes observed token rotation times (TTP) or token
	// inter-service gaps (PDP).
	RotationMean float64
	RotationMax  float64
	RotationN    int
	// TokenLosses counts injected token-loss faults; RecoveryTime is the
	// total medium time spent in claim/beacon recovery and bypass
	// reconfiguration.
	TokenLosses  int
	RecoveryTime float64
	// CorruptedFrames counts frames that occupied the medium but failed
	// their CRC check and required retransmission.
	CorruptedFrames int
	// Crashes counts station crash events scheduled within the horizon.
	Crashes int
}

// MissedAny reports whether any deadline was missed.
func (r Result) MissedAny() bool { return r.DeadlineMisses > 0 }

// Utilization returns the fraction of the horizon spent on synchronous
// payload plus overheads, asynchronous traffic, and token passing.
func (r Result) Utilization() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return (r.SyncTime + r.AsyncTime + r.TokenTime) / r.Horizon
}

func collectStations(states []*stationState, horizon float64) ([]StationResult, int) {
	results := make([]StationResult, len(states))
	misses := 0
	for i, st := range states {
		backlogged := 0
		for _, msg := range st.queue {
			if msg.deadline < horizon {
				backlogged++
			}
		}
		results[i] = StationResult{
			Station:      i,
			Stream:       st.stream,
			Completed:    st.completed,
			Missed:       st.missed,
			Backlogged:   backlogged,
			MaxLateness:  st.maxLateness,
			MeanResponse: st.response.Mean(),
			MaxResponse:  st.response.Max(),
			MaxQueue:     st.maxQueue,
		}
		misses += st.missed + backlogged
	}
	return results, misses
}

// hopDistance is the number of forward hops from station a to station b on
// an n-station ring (0 when a == b).
func hopDistance(a, b, n int) int {
	return ((b-a)%n + n) % n
}

// horizonFor picks a default simulation length: enough periods of the
// slowest stream for steady state to show, never less than minPeriods of
// the fastest.
func horizonFor(m message.Set, periodsOfMax float64) float64 {
	return math.Max(periodsOfMax*m.MaxPeriod(), 50*m.MinPeriod())
}
