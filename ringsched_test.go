package ringsched_test

import (
	"math"
	"math/rand"
	"testing"

	"ringsched"
)

// TestPublicAPIPipeline drives the whole library through the public facade
// only: draw a workload, analyze it under all three protocols, saturate
// it, and validate the result operationally.
func TestPublicAPIPipeline(t *testing.T) {
	const (
		n  = 12
		bw = 16e6
	)
	gen := ringsched.PaperGenerator()
	gen.Streams = n
	set, err := gen.Draw(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}

	mod := ringsched.NewModifiedPDP(bw)
	mod.Net = mod.Net.WithStations(n)
	std := ringsched.NewStandardPDP(bw)
	std.Net = std.Net.WithStations(n)
	ttp := ringsched.NewTTP(bw)
	ttp.Net = ttp.Net.WithStations(n)

	for _, a := range []ringsched.Analyzer{mod, std, ttp} {
		sat, err := ringsched.Saturate(set, a, bw, ringsched.SaturateOptions{})
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if !sat.Feasible {
			t.Fatalf("%s: infeasible", a.Name())
		}
		if sat.Utilization <= 0 || sat.Utilization > 1 {
			t.Errorf("%s: breakdown utilization %v outside (0,1]", a.Name(), sat.Utilization)
		}
	}

	// Operational validation via the facade simulators.
	sat, err := ringsched.Saturate(set, ttp, bw, ringsched.SaturateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	test := sat.Set.Scale(0.9)
	w, err := ringsched.NewWorkload(test, n, ringsched.PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ringsched.NewTTPSimulation(ttp, test, w)
	if err != nil {
		t.Fatal(err)
	}
	sim.AsyncSaturated = true
	sim.Horizon = 1
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MissedAny() {
		t.Errorf("guaranteed set missed %d deadlines in simulation", res.DeadlineMisses)
	}
}

func TestFacadeConstructors(t *testing.T) {
	if got := ringsched.Mbps(100); got != 100e6 {
		t.Errorf("Mbps(100) = %v", got)
	}
	if p := ringsched.IEEE8025Plant(4e6); p.Stations != 100 || p.BitDelayPerStation != 4 {
		t.Errorf("IEEE8025Plant = %+v", p)
	}
	if p := ringsched.FDDIPlant(100e6); p.BitDelayPerStation != 75 {
		t.Errorf("FDDIPlant = %+v", p)
	}
	if f := ringsched.PaperFrame(); f.InfoBits != 512 || f.OvhdBits != 112 {
		t.Errorf("PaperFrame = %+v", f)
	}
	if g := ringsched.PaperGenerator(); g.Streams != 100 {
		t.Errorf("PaperGenerator = %+v", g)
	}
	if e := ringsched.PaperEstimator(10, 1); e.Samples != 10 {
		t.Errorf("PaperEstimator = %+v", e)
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	all := ringsched.Experiments()
	if len(all) < 10 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	if _, err := ringsched.ExperimentByID("FIG1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ringsched.ExperimentByID("MISSING"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestPaperHeadlineOrdering is the repository's headline assertion: the
// protocol ordering of the paper's conclusion holds — PDP ahead in the
// low-bandwidth regime, TTP ahead at high bandwidth.
func TestPaperHeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo comparison skipped in -short mode")
	}
	est := ringsched.PaperEstimator(40, 1993)

	type point struct {
		bw       float64
		pdpLeads bool
	}
	for _, pt := range []point{{4e6, true}, {300e6, false}} {
		pdp, err := est.Estimate(ringsched.NewModifiedPDP(pt.bw), pt.bw)
		if err != nil {
			t.Fatal(err)
		}
		fddi, err := est.Estimate(ringsched.NewTTP(pt.bw), pt.bw)
		if err != nil {
			t.Fatal(err)
		}
		lead := pdp.Mean > fddi.Mean
		if lead != pt.pdpLeads {
			t.Errorf("at %.0f Mbps: PDP=%.4f FDDI=%.4f, want pdpLeads=%v",
				pt.bw/1e6, pdp.Mean, fddi.Mean, pt.pdpLeads)
		}
	}
}

func TestFacadeTaskSetAlias(t *testing.T) {
	ts := ringsched.TaskSet{
		{Cost: 1e-3, Period: 10e-3},
		{Cost: 2e-3, Period: 30e-3},
	}
	if u := ts.Utilization(); math.Abs(u-(0.1+2.0/30)) > 1e-12 {
		t.Errorf("Utilization = %v", u)
	}
}
