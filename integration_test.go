package ringsched_test

import (
	"math/rand"
	"testing"

	"ringsched"
)

// TestCrossProtocolInvariants checks structural relationships that must
// hold between the analyzers for any workload:
//
//   - modified 802.5 admits everything standard 802.5 admits,
//   - the per-station overrun TTP budget admits a subset of the paper's,
//   - every breakdown utilization lies in (0, 1].
func TestCrossProtocolInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized invariant sweep skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(77))
	gen := ringsched.Generator{Streams: 14, MeanPeriod: 80e-3, PeriodRatio: 10}
	for trial := 0; trial < 25; trial++ {
		set, err := gen.Draw(rng)
		if err != nil {
			t.Fatal(err)
		}
		bw := []float64{2e6, 16e6, 100e6, 622e6}[trial%4]
		set, err = set.ScaleToUtilization(0.05+rng.Float64()*0.85, bw)
		if err != nil {
			t.Fatal(err)
		}

		std := ringsched.NewStandardPDP(bw)
		std.Net = std.Net.WithStations(14)
		mod := ringsched.NewModifiedPDP(bw)
		mod.Net = mod.Net.WithStations(14)
		okStd, err := std.Schedulable(set)
		if err != nil {
			t.Fatal(err)
		}
		okMod, err := mod.Schedulable(set)
		if err != nil {
			t.Fatal(err)
		}
		if okStd && !okMod {
			t.Fatalf("trial %d: standard admitted a set modified rejects (bw=%g)", trial, bw)
		}

		classic := ringsched.NewTTP(bw)
		classic.Net = classic.Net.WithStations(14)
		conservative := classic
		conservative.Overrun = ringsched.OverrunPerStation
		okClassic, err := classic.Schedulable(set)
		if err != nil {
			t.Fatal(err)
		}
		okConservative, err := conservative.Schedulable(set)
		if err != nil {
			t.Fatal(err)
		}
		if okConservative && !okClassic {
			t.Fatalf("trial %d: conservative budget admitted a set the paper's rejects (bw=%g)", trial, bw)
		}
	}
}

// TestBreakdownUtilizationInUnitInterval verifies the engine never reports
// a breakdown utilization outside (0, 1] for feasible workloads: the
// medium cannot carry more than itself.
func TestBreakdownUtilizationInUnitInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(31))
	gen := ringsched.Generator{Streams: 10, MeanPeriod: 100e-3, PeriodRatio: 10}
	for trial := 0; trial < 10; trial++ {
		set, err := gen.Draw(rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, bw := range []float64{4e6, 100e6} {
			mod := ringsched.NewModifiedPDP(bw)
			mod.Net = mod.Net.WithStations(10)
			ttp := ringsched.NewTTP(bw)
			ttp.Net = ttp.Net.WithStations(10)
			for _, a := range []ringsched.Analyzer{mod, ttp} {
				sat, err := ringsched.Saturate(set, a, bw, ringsched.SaturateOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !sat.Feasible {
					continue
				}
				if sat.Utilization <= 0 || sat.Utilization > 1+1e-9 {
					t.Errorf("trial %d %s at %g: breakdown utilization %v outside (0,1]",
						trial, a.Name(), bw, sat.Utilization)
				}
			}
		}
	}
}

// TestAllThreeSimulatorsAgreeAtLowLoad runs the same light workload
// through PDPSim, the reservation MAC, and TTPSim: none may miss a
// deadline, and each must account for the full horizon (occupancy
// components plus idle sum to 1).
func TestAllThreeSimulatorsAgreeAtLowLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep skipped in -short mode")
	}
	const (
		n  = 8
		bw = 16e6
	)
	preset, err := ringsched.PresetByName("avionics")
	if err != nil {
		t.Fatal(err)
	}
	set, err := preset.Set.ScaleToUtilization(0.25, bw)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ringsched.NewWorkload(set, n, ringsched.PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}

	checkResult := func(name string, res ringsched.SimResult) {
		if res.DeadlineMisses != 0 {
			t.Errorf("%s: %d misses at 25%% load", name, res.DeadlineMisses)
		}
		total := res.SyncTime + res.AsyncTime + res.TokenTime + res.RecoveryTime + res.IdleTime
		if diff := total/res.Horizon - 1; diff > 0.02 || diff < -0.02 {
			t.Errorf("%s: occupancy components sum to %.4f of horizon", name, total/res.Horizon)
		}
		for _, s := range res.Stations {
			if s.MaxQueue > 1 {
				t.Errorf("%s: station %d backlog %d at light load", name, s.Station, s.MaxQueue)
			}
		}
	}

	pdp := ringsched.NewModifiedPDP(bw)
	pdp.Net = pdp.Net.WithStations(n)
	resPDP, err := (ringsched.PDPSimulation{
		Net: pdp.Net, Frame: pdp.Frame, Variant: ringsched.Modified8025,
		Workload: w, Horizon: 2,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	checkResult("PDPSim", resPDP)

	resMAC, err := (ringsched.ReservationSimulation{
		Net: pdp.Net, Frame: pdp.Frame, Workload: w, PriorityLevels: 8, Horizon: 2,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	checkResult("ReservationSim", resMAC.Result)

	ttp := ringsched.NewTTP(bw)
	ttp.Net = ttp.Net.WithStations(n)
	simT, err := ringsched.NewTTPSimulation(ttp, set, w)
	if err != nil {
		t.Fatal(err)
	}
	simT.Horizon = 2
	resTTP, err := simT.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkResult("TTPSim", resTTP)
}
