#!/usr/bin/env bash
# Regenerate a benchmark report (canonical baseline: BENCH_PR4.json;
# the ring-edit incremental-vs-full numbers are recorded in BENCH_PR9.json,
# the observability-plane hot paths — flight-recorder record and audit
# append — in BENCH_PR10.json).
#
# Usage:
#   scripts/bench.sh [out.json]
#
# Environment:
#   BENCH_PATTERN   benchmark regexp (default: the gated harness set)
#   BENCH_COUNT     -count repeats folded by benchreport (default 3)
#   BENCH_TIME      -benchtime per benchmark (default 0.5s)
#
# Compare a fresh run against the checked-in report (allocation gate only;
# wall-clock comparisons across machines are meaningless):
#   scripts/bench.sh /tmp/head.json
#   go run ./cmd/benchreport -in /tmp/head.json -baseline BENCH_PR4.json -ns-tol -1
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR4.json}"
pattern="${BENCH_PATTERN:-^(BenchmarkExactTestReference|BenchmarkRTAReference|BenchmarkWorkspace(ExactTest|RTA|Probe)|Benchmark(PDP|TTP)Probe(Bind)?|BenchmarkAnalyzeBatch|BenchmarkSaturate(TTP|PDP)(Reference)?|BenchmarkTheorem(41|51)|BenchmarkFig1Experiment|BenchmarkAnalyzeTopologySingleRing|BenchmarkResilienceAdmit|BenchmarkRingEdit(Incremental|IncrementalTTP|Full)|BenchmarkAuditAppend|BenchmarkFlightRecorderRecord)$}"
count="${BENCH_COUNT:-3}"
benchtime="${BENCH_TIME:-0.5s}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchmem \
    -benchtime "$benchtime" -count "$count" -timeout 60m \
    . ./internal/rma/ ./internal/core/ ./internal/breakdown/ ./internal/resilience/ ./internal/ringstate/ ./internal/service/ | tee "$tmp"
go run ./cmd/benchreport -in "$tmp" -out "$out"
echo "wrote $out"
