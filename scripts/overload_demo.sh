#!/usr/bin/env bash
# Overload-protection demo: drive ringschedd past saturation twice — once
# with admission control ON (default bounded queue + request deadlines)
# and once OFF (-queue-depth -1, no deadlines) — and show that goodput
# stays near peak with shedding while it collapses without it.
#
# Usage:
#   scripts/overload_demo.sh
#
# Environment:
#   DEMO_RPS        open-loop arrival rate (default 40)
#   DEMO_DURATION   per-run length (default 8s)
#   DEMO_WORKERS    ringschedd workers (default 1, to saturate cheaply)
#   DEMO_SAMPLES    sweep sample count per request (default 400, ~100ms each)
#   DEMO_DEADLINE   client deadline in ms for both runs (default 2000)
set -euo pipefail
cd "$(dirname "$0")/.."

rps="${DEMO_RPS:-40}"
duration="${DEMO_DURATION:-8s}"
workers="${DEMO_WORKERS:-1}"
samples="${DEMO_SAMPLES:-400}"
deadline="${DEMO_DEADLINE:-2000}"

bin="$(mktemp -d)"
trap 'rm -rf "$bin"; [[ -n "${pid:-}" ]] && kill "$pid" 2>/dev/null || true' EXIT
go build -o "$bin/ringschedd" ./cmd/ringschedd
go build -o "$bin/ringloadgen" ./cmd/ringloadgen

# Start the daemon, capture the bound address from its log line.
start_daemon() { # args: extra ringschedd flags
    "$bin/ringschedd" -addr 127.0.0.1:0 -workers "$workers" "$@" \
        >"$bin/daemon.log" 2>&1 &
    pid=$!
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/.*listening.*addr=\([0-9.:]*\).*/\1/p' "$bin/daemon.log" | head -1)"
        [[ -n "$addr" ]] && return 0
        sleep 0.1
    done
    echo "daemon never came up:" >&2
    cat "$bin/daemon.log" >&2
    exit 1
}

stop_daemon() {
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    pid=""
}

run_load() { # args: label, extra ringloadgen flags...
    local label="$1"
    shift
    "$bin/ringloadgen" -base "http://$addr" -rps "$rps" -duration "$duration" \
        -mix sweep -distinct 0 -sweep-samples "$samples" -sweep-streams 12 \
        -seed 1 -client-id "demo-$label" "$@" | tee "$bin/$label.txt"
}

# "good" means the same thing in both runs: a 2xx delivered within the
# latency budget. The ON run propagates that budget as a real deadline so
# the server can shed infeasible work; the OFF run mimics clients with no
# deadline discipline (requests ride until they finish), which is what
# lets an unbounded queue collapse.
echo "== shedding ON (bounded queue, deadline-aware admission) =="
start_daemon
run_load on -deadline-ms "$deadline"
stop_daemon

echo
echo "== shedding OFF (-queue-depth -1: unbounded queue, no deadlines) =="
start_daemon -queue-depth -1
run_load off -good-ms "$deadline"
stop_daemon

good_on="$(awk '$1 == "goodput_rps" {print $2}' "$bin/on.txt")"
good_off="$(awk '$1 == "goodput_rps" {print $2}' "$bin/off.txt")"
shed_on="$(awk '$1 == "shed" {print $2}' "$bin/on.txt")"

echo
echo "goodput with shedding:    $good_on rps (shed $shed_on requests)"
echo "goodput without shedding: $good_off rps"

awk -v on="$good_on" -v off="$good_off" 'BEGIN {
    if (on <= 0) { print "FAIL: no goodput with shedding enabled"; exit 1 }
    if (off > 0 && on < 2 * off) {
        printf "FAIL: shedding goodput %.2f not >= 2x unprotected %.2f\n", on, off
        exit 1
    }
    print "PASS: bounded queue + deadline shedding preserves goodput past saturation"
}'
