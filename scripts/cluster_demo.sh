#!/usr/bin/env bash
# Sharded-cluster demo: three ringschedd replicas form a consistent-hash
# cluster behind ringsched-lb, then the script proves the two cluster
# guarantees end to end:
#
#   1. De-duplication — an identical request burst sprayed directly at
#      every replica is computed exactly once cluster-wide (peer cache
#      fills route every copy to the key's owner, whose flight group
#      coalesces them).
#   2. Degradation — SIGKILLing one replica in the middle of an open-loop
#      load run keeps goodput above a floor and the error rate inside a
#      budget: the lb fails the dead shard over to the survivors.
#
# Usage:
#   scripts/cluster_demo.sh
#
# Environment:
#   DEMO_PORT_BASE  first of four consecutive ports (default 7080: lb on
#                   7080, replicas on 7081-7083)
#   DEMO_RPS        open-loop arrival rate for the kill run (default 60)
#   DEMO_DURATION   kill-run length (default 6s)
#   DEMO_DEADLINE   per-request deadline in ms (default 2000)
#   DEMO_ERR_BUDGET max tolerated error rate after the kill (default 0.10)
set -euo pipefail
cd "$(dirname "$0")/.."

port_base="${DEMO_PORT_BASE:-7080}"
rps="${DEMO_RPS:-60}"
duration="${DEMO_DURATION:-6s}"
deadline="${DEMO_DEADLINE:-2000}"
err_budget="${DEMO_ERR_BUDGET:-0.10}"

lb_addr="127.0.0.1:$port_base"
replicas=("127.0.0.1:$((port_base + 1))" "127.0.0.1:$((port_base + 2))" "127.0.0.1:$((port_base + 3))")

bin="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/ringschedd" ./cmd/ringschedd
go build -o "$bin/ringsched-lb" ./cmd/ringsched-lb
go build -o "$bin/ringloadgen" ./cmd/ringloadgen

wait_healthy() { # addr
    for _ in $(seq 1 100); do
        curl -sf "http://$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "FAIL: $1 never became healthy" >&2
    exit 1
}

# Start the three clustered replicas; each advertises itself and peers
# with the other two.
for i in 0 1 2; do
    peers=""
    for j in 0 1 2; do
        [[ $i -eq $j ]] && continue
        peers="${peers:+$peers,}${replicas[$j]}"
    done
    "$bin/ringschedd" -addr "${replicas[$i]}" -advertise "${replicas[$i]}" \
        -peers "$peers" -peer-fill-timeout 500ms \
        >"$bin/replica$i.log" 2>&1 &
    pids+=($!)
    disown $! # silence job-control noise when cleanup SIGKILLs daemons
done
for r in "${replicas[@]}"; do wait_healthy "$r"; done

"$bin/ringsched-lb" -addr "$lb_addr" -backends "$(IFS=,; echo "${replicas[*]}")" \
    -retries -1 -check-interval 250ms >"$bin/lb.log" 2>&1 &
lb_pid=$!
pids+=("$lb_pid")
disown "$lb_pid"
wait_healthy "$lb_addr"

echo "== duplicate burst: 12 identical requests across all 3 replicas =="
body='{"bandwidthMbps":7777,"streams":[{"name":"s","periodMs":10,"lengthBits":4096}]}'
# Subshell so the bare wait only covers the curl jobs, not the daemons.
(
    for r in "${replicas[@]}"; do
        for _ in 1 2 3 4; do
            curl -sf -XPOST -d "$body" "http://$r/v1/analyze" >/dev/null &
        done
    done
    wait
)

computes=0
for r in "${replicas[@]}"; do
    c="$(curl -sf "http://$r/metrics" \
        | awk '$1 == "ringschedd_computations_total{endpoint=\"analyze\"}" {print $2}')"
    computes=$((computes + ${c:-0}))
done
echo "cluster-wide computations for the burst: $computes"
if [[ "$computes" -ne 1 ]]; then
    echo "FAIL: identical burst computed $computes times, want exactly 1" >&2
    exit 1
fi

echo
echo "== kill one replica mid-load ($rps rps for $duration) =="
(
    sleep 2
    echo "killing replica 0 (${replicas[0]})"
    kill -9 "${pids[0]}" 2>/dev/null || true
) &
killer=$!
"$bin/ringloadgen" -base "http://$lb_addr" -rps "$rps" -duration "$duration" \
    -mix analyze -distinct 0 -deadline-ms "$deadline" -seed 31 \
    -client-id cluster-demo | tee "$bin/load.txt"
wait "$killer"

goodput="$(awk '$1 == "goodput_rps" {print $2}' "$bin/load.txt")"
err_rate="$(awk '$1 == "error_rate" {print $2}' "$bin/load.txt")"
floor="$(awk -v r="$rps" 'BEGIN {printf "%.1f", r / 2}')"

curl -sf "http://$lb_addr/healthz" >/dev/null || {
    echo "FAIL: lb unhealthy after replica kill" >&2
    exit 1
}
curl -sf -XPOST -d "$body" "http://$lb_addr/v1/analyze" >/dev/null || {
    echo "FAIL: fresh request after kill did not succeed" >&2
    exit 1
}

echo
echo "goodput after kill:   $goodput rps (floor $floor)"
echo "error rate after kill: $err_rate (budget $err_budget)"
awk -v good="$goodput" -v floor="$floor" -v err="$err_rate" -v budget="$err_budget" 'BEGIN {
    if (good < floor) {
        printf "FAIL: goodput %.1f below floor %.1f after replica kill\n", good, floor
        exit 1
    }
    if (err > budget) {
        printf "FAIL: error rate %.3f above budget %.3f after replica kill\n", err, budget
        exit 1
    }
    print "PASS: one computation per distinct key cluster-wide; kill degrades only the dead shard"
}'
