#!/usr/bin/env bash
# Online-admission demo: drive the stateful /v1/rings API end to end and
# prove its three contracts against a live ringschedd:
#
#   1. Admission — identical streams are admitted one CAS edit at a time
#      until the incremental analysis reports the newcomer infeasible; the
#      rejection is a 200 with a negative verdict, not an error, and the
#      stream stays resident so operators can inspect or remove it.
#   2. Equivalence — the saturated ring's verdicts (dumped at its current
#      version) are exactly what the offline schedcheck CLI computes for
#      the same stream set: the incremental engine and the from-scratch
#      kernel agree on the wire, not just in unit tests.
#   3. Concurrency control — an edit naming a stale version is refused
#      with a typed 409 conflict carrying the current version to rebase on.
#
# Usage:
#   scripts/rings_demo.sh
#
# Environment:
#   DEMO_PORT  ringschedd port (default 7095)
set -euo pipefail
cd "$(dirname "$0")/.."

port="${DEMO_PORT:-7095}"
addr="127.0.0.1:$port"
bw=16

bin="$(mktemp -d)"
work="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$bin" "$work"
}
trap cleanup EXIT

go build -o "$bin/ringschedd" ./cmd/ringschedd
go build -o "$bin/schedcheck" ./cmd/schedcheck

"$bin/ringschedd" -addr "$addr" &
pids+=($!)
for _ in $(seq 1 100); do
    curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "http://$addr/healthz" | grep -q '"ok"'

# --- 1. Create a ring and admit until the first rejection. -------------
state=$(curl -sf -XPOST -d "{\"bandwidthMbps\":$bw}" "http://$addr/v1/rings")
rid=$(jq -r .id <<<"$state")
ver=$(jq -r .version <<<"$state")
echo "created ring $rid at version $ver (${bw} Mbps)"

rejected_id=""
rejected_name=""
for i in $(seq 1 64); do
    name="load-$i"
    edit=$(curl -sf -XPOST \
        -d "{\"expectedVersion\":$ver,\"stream\":{\"name\":\"$name\",\"periodMs\":10,\"lengthBits\":16384}}" \
        "http://$addr/v1/rings/$rid/streams")
    ver=$(jq -r .version <<<"$edit")
    if [ "$(jq '[.deltas[].editedSchedulable] | any(. == false)' <<<"$edit")" = true ]; then
        rejected_id=$(jq -r .streamId <<<"$edit")
        rejected_name="$name"
        echo "stream $i rejected as infeasible at version $ver ($(jq -c \
            '[.deltas[] | {protocol, editedSchedulable}]' <<<"$edit"))"
        break
    fi
done
if [ -z "$rejected_id" ]; then
    echo "FAIL: 64 admissions never saturated a ${bw} Mbps ring" >&2
    exit 1
fi

# --- 2. A stale edit is refused with a typed, rebasable conflict. ------
status=$(curl -s -o "$work/conflict.json" -w '%{http_code}' -XPOST \
    -d '{"expectedVersion":1,"stream":{"periodMs":10,"lengthBits":16384}}' \
    "http://$addr/v1/rings/$rid/streams")
if [ "$status" != 409 ]; then
    echo "FAIL: stale edit got HTTP $status, want 409" >&2
    exit 1
fi
jq -e --argjson v "$ver" '.code == "conflict" and .currentVersion == $v' \
    "$work/conflict.json" >/dev/null
echo "stale edit refused: 409 conflict, currentVersion $ver"

# --- 3. The ring's verdicts match offline schedcheck on the dump. ------
state=$(curl -sf "http://$addr/v1/rings/$rid")
jq '[.streams[] | {name, periodMs, lengthBits}]' <<<"$state" > "$work/set.json"
"$bin/schedcheck" -set "$work/set.json" -bw "$bw" -verbose -json > "$work/offline.json"

strip='[.verdicts[] | .streams = ([.streams[]? | del(.id)])]'
ring_v=$(jq -cS "$strip" <<<"$state")
offline_v=$(jq -cS "$strip" "$work/offline.json")
if [ "$ring_v" != "$offline_v" ]; then
    echo "FAIL: ring verdicts diverge from offline schedcheck" >&2
    diff <(jq -S "$strip" <<<"$state") <(jq -S "$strip" "$work/offline.json") >&2 || true
    exit 1
fi
jq -e --arg n "$rejected_name" \
    'any(.verdicts[]; any(.streams[]?; .name == $n and (.schedulable | not)))' \
    "$work/offline.json" >/dev/null
echo "ring verdicts at version $ver match offline schedcheck ($(jq \
    '.streams | length' <<<"$state") streams, $rejected_name infeasible in both)"

# --- 4. Removing the rejected stream restores schedulability. ----------
edit=$(curl -sf -XDELETE \
    "http://$addr/v1/rings/$rid/streams/$rejected_id?expectedVersion=$ver")
ver=$(jq -r .version <<<"$edit")
jq -e 'all(.deltas[]; .schedulable)' <<<"$edit" >/dev/null
echo "removed $rejected_name: all protocols schedulable again at version $ver"

curl -sf "http://$addr/metrics" > "$work/metrics.txt"
grep -Eq 'ringschedd_ring_edits_total\{op="add",outcome="ok"\} [1-9]' "$work/metrics.txt"
grep -Eq 'ringschedd_ring_edits_total\{op="add",outcome="conflict"\} 1' "$work/metrics.txt"
grep -Eq 'ringschedd_rings 1' "$work/metrics.txt"

curl -sf -XDELETE "http://$addr/v1/rings/$rid" -o /dev/null
echo "PASS: online admission, CAS conflict, and offline equivalence all hold"
