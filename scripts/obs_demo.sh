#!/usr/bin/env bash
# Observability-plane demo: bring up a two-replica cluster behind the lb
# and prove the cross-process debugging story end to end:
#
#   1. Federated tracing — a request that peer-fills (lb → replica A →
#      replica B) yields, from ONE query to the lb's /debug/traces, a
#      merged span tree containing member-attributed spans from all
#      three processes.
#   2. Flight recorder — /debug/requests on the serving replica carries
#      the request digest: endpoint, canonical key, the "peer" cache
#      disposition, and the same trace ID the client saw.
#   3. Audit trail — after CAS edits, /v1/rings/{id}/history?format=script
#      replayed offline through ringadmit -verify-history reproduces the
#      live verdicts bit-for-bit.
#   4. ringtop — one snapshot of the fleet renders RED rows for both
#      replicas from their /metrics and /debug/requests.
#
# Usage:
#   scripts/obs_demo.sh
#
# Environment:
#   DEMO_PORT  first port of the block used (default 7120)
set -euo pipefail
cd "$(dirname "$0")/.."

port="${DEMO_PORT:-7120}"
a="127.0.0.1:$port"
b="127.0.0.1:$((port + 1))"
lb="127.0.0.1:$((port + 2))"

bin="$(mktemp -d)"
work="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$bin" "$work"
}
trap cleanup EXIT

go build -o "$bin/ringschedd" ./cmd/ringschedd
go build -o "$bin/ringsched-lb" ./cmd/ringsched-lb
go build -o "$bin/ringadmit" ./cmd/ringadmit
go build -o "$bin/ringtop" ./cmd/ringtop

"$bin/ringschedd" -addr "$a" -advertise "$a" -peers "$b" &
pids+=($!)
"$bin/ringschedd" -addr "$b" -advertise "$b" -peers "$a" &
pids+=($!)
# The lb fronts ONLY replica A: spans from B can reach a trace query
# solely through federation (A's peer scatter or the lb's own).
"$bin/ringsched-lb" -addr "$lb" -backends "$a" &
pids+=($!)
for addr in "$a" "$b" "$lb"; do
    for _ in $(seq 1 100); do
        curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
        sleep 0.1
    done
    curl -sf "http://$addr/healthz" >/dev/null
done

# --- 1. Drive one request that crosses all three processes. ------------
trace_id=""
for bw in $(seq 1 512); do
    body="{\"bandwidthMbps\":$bw,\"streams\":[{\"name\":\"s\",\"periodMs\":10,\"lengthBits\":4096}]}"
    curl -sf -D "$work/hdr.txt" -o /dev/null -XPOST -d "$body" "http://$lb/v1/analyze"
    if grep -qi '^x-cache: peer' "$work/hdr.txt"; then
        trace_id=$(grep -i '^x-ringsched-trace:' "$work/hdr.txt" | tr -d '\r' | awk '{print $2}')
        break
    fi
done
if [ -z "$trace_id" ]; then
    echo "FAIL: no bandwidth in 1..512 produced a peer fill" >&2
    exit 1
fi
echo "peer-filled request traced as $trace_id"

curl -sf "http://$lb/debug/traces?trace=$trace_id" > "$work/trace.json"
members=$(jq -r '[.spans[].member] | unique | length' "$work/trace.json")
if [ "$members" -lt 3 ]; then
    echo "FAIL: federated trace has spans from $members members, want >= 3" >&2
    jq . "$work/trace.json" >&2
    exit 1
fi
jq -e '.tree | length > 0' "$work/trace.json" >/dev/null
jq -e '[.spans[].name] | index("lb.forward") != null and index("peer.fill") != null' \
    "$work/trace.json" >/dev/null
echo "federated trace: spans from $members processes in one merged tree"

# --- 2. The flight recorder has the digest, trace ID included. ---------
curl -sf "http://$a/debug/requests?endpoint=analyze" > "$work/requests.json"
jq -e --arg id "$trace_id" \
    'any(.requests[]; .traceId == $id and .cache == "peer" and .key != "")' \
    "$work/requests.json" >/dev/null
echo "flight recorder: digest carries the peer disposition and trace ID"

# --- 3. Audit trail replays to bit-identical verdicts. -----------------
state=$(curl -sf -XPOST -d '{"bandwidthMbps":4,"streams":[{"name":"gyro","periodMs":10,"lengthBits":4096}]}' \
    "http://$a/v1/rings")
rid=$(jq -r .id <<<"$state")
ver=$(jq -r .version <<<"$state")
for i in $(seq 1 5); do
    edit=$(curl -sf -XPOST \
        -d "{\"expectedVersion\":$ver,\"stream\":{\"periodMs\":1$i.5,\"lengthBits\":$((4096 * i))}}" \
        "http://$a/v1/rings/$rid/streams")
    ver=$(jq -r .version <<<"$edit")
done
curl -sf "http://$a/v1/rings/$rid/history?format=script" > "$work/history.txt"
grep -q "# ring $rid history (version $ver)" "$work/history.txt"
"$bin/ringadmit" -base "http://$a" -verify-history "$rid" | tee "$work/verify.txt"
grep -q "verified: ring $rid version $ver" "$work/verify.txt"
echo "audit trail: ringadmit replay certified bit-identical verdicts"

# --- 4. ringtop renders the fleet. -------------------------------------
"$bin/ringtop" -targets "$a,$b" -count 1 > "$work/ringtop.txt"
grep -q '2 members' "$work/ringtop.txt"
grep -q "$a" "$work/ringtop.txt"
grep -q "$b" "$work/ringtop.txt"
echo "ringtop snapshot:"
sed 's/^/  /' "$work/ringtop.txt"

echo "PASS: federated tracing, flight recorder, audit replay, and ringtop all hold"
