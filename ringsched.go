// Package ringsched reproduces Kamat & Zhao, "Real-Time Schedulability of
// Two Token Ring Protocols" (ICDCS 1993): exact schedulability criteria for
// hard-real-time synchronous message sets on token ring networks under the
// priority driven protocol of IEEE 802.5 (standard and modified variants,
// Theorem 4.1) and the timed token protocol of FDDI with the local
// synchronous bandwidth allocation scheme (Theorem 5.1), plus the average
// breakdown utilization methodology used to compare them (Figure 1).
//
// This file is the stable public facade: it re-exports the library's main
// types and constructors so downstream users never import internal
// packages. The feature areas are:
//
//   - network plants and message models (RingConfig, Stream, MessageSet,
//     Generator),
//   - schedulability analyzers (PDPAnalyzer, TTPAnalyzer, IdealRM,
//     allocation-scheme analyzers),
//   - the breakdown-utilization Monte Carlo engine (Estimator, Saturate),
//   - operational discrete-event simulators for both protocols
//     (PDPSimulation, TTPSimulation), and
//   - the reproduction experiments (Experiments, ExperimentByID).
//
// Quick start:
//
//	set, _ := ringsched.PaperGenerator().Draw(rand.New(rand.NewSource(1)))
//	ok, _ := ringsched.NewTTP(ringsched.Mbps(100)).Schedulable(set)
package ringsched

import (
	"context"
	"io"
	"math/rand"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/expt"
	"ringsched/internal/faults"
	"ringsched/internal/frame"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/ring"
	"ringsched/internal/rma"
	"ringsched/internal/service"
	"ringsched/internal/sim"
	"ringsched/internal/tokensim"
	"ringsched/internal/tokenstats"
	"ringsched/internal/topology"
	"ringsched/internal/ttpalloc"
)

// Network plant and workload model.
type (
	// RingConfig describes the physical token ring (topology, latency,
	// bandwidth); see the IEEE8025 and FDDI presets.
	RingConfig = ring.Config
	// Stream is one periodic synchronous message stream S_i.
	Stream = message.Stream
	// MessageSet is a synchronous message set M = {S_1..S_n}.
	MessageSet = message.Set
	// Generator draws random message sets for Monte Carlo estimation.
	Generator = message.Generator
	// PeriodModel selects the period distribution of a Generator.
	PeriodModel = message.PeriodModel
	// LengthModel selects the relative length mix of a Generator.
	LengthModel = message.LengthModel
	// FrameSpec is the fixed frame format (payload and overhead bits).
	FrameSpec = frame.Spec
	// Preset is a named built-in workload suite.
	Preset = message.Preset
)

// Presets returns the built-in workload suites (avionics,
// process-control, space-station, multimedia).
func Presets() []Preset { return message.Presets() }

// PresetByName looks up one built-in workload suite.
func PresetByName(name string) (Preset, error) { return message.PresetByName(name) }

// Analyzers.
type (
	// Analyzer is the schedulability interface every protocol implements.
	Analyzer = core.Analyzer
	// PDPAnalyzer is the Theorem 4.1 analyzer for the priority driven
	// protocol.
	PDPAnalyzer = core.PDP
	// PDPVariant selects the standard or modified 802.5 implementation.
	PDPVariant = core.Variant
	// PDPReport is the detailed Theorem 4.1 outcome.
	PDPReport = core.PDPReport
	// TTPAnalyzer is the Theorem 5.1 analyzer for the timed token
	// protocol with the local allocation scheme.
	TTPAnalyzer = core.TTP
	// TTPReport is the detailed Theorem 5.1 outcome.
	TTPReport = core.TTPReport
	// TTRTRule selects how TTRT is chosen at ring initialization.
	TTRTRule = core.TTRTRule
	// OverrunBudget selects the asynchronous-overrun allowance in θ.
	OverrunBudget = core.OverrunBudget
	// IdealRM is the zero-overhead rate-monotonic baseline of [10].
	IdealRM = core.IdealRM
	// AllocationScheme assigns TTP synchronous bandwidths h_i.
	AllocationScheme = ttpalloc.Scheme
	// AllocationAnalyzer adapts any AllocationScheme to Analyzer.
	AllocationAnalyzer = ttpalloc.Analyzer
	// Task and TaskSet expose the underlying rate-monotonic analysis for
	// abstract (cost, period) workloads.
	Task = rma.Task
	// TaskSet is an ordered set of Tasks.
	TaskSet = rma.TaskSet
	// RMWorkspace is the allocation-free rate-monotonic kernel: Load a
	// task set once, then rescale costs and re-run the exact test with
	// zero allocations per probe (the engine behind the batched probes
	// and the saturation search).
	RMWorkspace = rma.Workspace
	// Probe evaluates one bound message set at varying payload scales
	// without allocating; obtain one from a BatchAnalyzer.
	Probe = core.Probe
	// BatchAnalyzer is implemented by analyzers with an allocation-free
	// scaled-probe path (all protocol analyzers).
	BatchAnalyzer = core.BatchAnalyzer
)

// AnalyzeBatch evaluates one message set at each payload scale through the
// analyzer's pooled probe (bit-identical to per-scale Schedulable calls,
// without the per-call allocation).
func AnalyzeBatch(a Analyzer, m MessageSet, scales []float64) ([]bool, error) {
	return core.AnalyzeBatch(a, m, scales)
}

// PDP variants and TTRT rules.
const (
	// Standard8025 pays the token-pass overhead per frame.
	Standard8025 = core.Standard8025
	// Modified8025 pays it once per message.
	Modified8025 = core.Modified8025
	// TTRTSqrtHeuristic bids √(θ·P_i) per station (the paper's rule).
	TTRTSqrtHeuristic = core.TTRTSqrtHeuristic
	// TTRTHalfMinPeriod uses Pmin/2.
	TTRTHalfMinPeriod = core.TTRTHalfMinPeriod
	// TTRTFixed uses an explicitly configured value.
	TTRTFixed = core.TTRTFixed
	// OverrunSingleFrame is the paper's eq. (11): θ = Θ + F.
	OverrunSingleFrame = core.OverrunSingleFrame
	// OverrunPerStation budgets θ = Θ + n·F (conservative).
	OverrunPerStation = core.OverrunPerStation
)

// Workload generator distribution selectors.
const (
	// PeriodsUniform draws periods uniformly (the paper's comparison).
	PeriodsUniform = message.PeriodsUniform
	// PeriodsLogUniform spreads periods evenly across decades.
	PeriodsLogUniform = message.PeriodsLogUniform
	// PeriodsEqual gives every stream the mean period.
	PeriodsEqual = message.PeriodsEqual
	// PeriodsHarmonic draws periods as Pmin·2^k.
	PeriodsHarmonic = message.PeriodsHarmonic
	// LengthsProportional draws payloads proportional to the period.
	LengthsProportional = message.LengthsProportional
	// LengthsUniform draws payloads independent of the period.
	LengthsUniform = message.LengthsUniform
	// LengthsEqual gives every stream the same payload.
	LengthsEqual = message.LengthsEqual
)

// Breakdown-utilization engine.
type (
	// Estimator runs the Monte Carlo average-breakdown estimation.
	Estimator = breakdown.Estimator
	// Estimate is one Monte Carlo estimate with confidence interval.
	Estimate = breakdown.Estimate
	// Saturation is one set driven to its breakdown load.
	Saturation = breakdown.Saturation
	// SaturateOptions tunes the saturation binary search.
	SaturateOptions = breakdown.SaturateOptions
	// Series is one breakdown-vs-bandwidth curve (a Figure 1 line).
	Series = breakdown.Series
)

// Simulators.
type (
	// PDPSimulation is the operational priority-driven-protocol
	// simulator.
	PDPSimulation = tokensim.PDPSim
	// TTPSimulation is the operational timed-token (FDDI) simulator.
	TTPSimulation = tokensim.TTPSim
	// ReservationSimulation is the faithful IEEE 802.5 priority/
	// reservation MAC simulator (token priority field, reservation bits,
	// stacking stations, configurable priority levels).
	ReservationSimulation = tokensim.ReservationSim
	// ReservationResult extends SimResult with arbitration metrics.
	ReservationResult = tokensim.ReservationResult
	// SimResult is a simulation outcome (deadline misses, occupancy,
	// rotation statistics).
	SimResult = tokensim.Result
	// Workload binds streams to ring stations with explicit phasing.
	Workload = tokensim.Workload
	// Tracer observes simulator events (frames, token passes,
	// completions) as they occur.
	Tracer = tokensim.Tracer
	// TraceEvent is one observed simulator event.
	TraceEvent = tokensim.TraceEvent
	// TraceKind classifies trace events.
	TraceKind = tokensim.TraceKind
	// WriterTracer logs trace events as text lines.
	WriterTracer = tokensim.WriterTracer
	// CountingTracer tallies trace events by kind.
	CountingTracer = tokensim.CountingTracer
	// TokenStatsCollector derives token rotation/walk statistics from a
	// simulator's event stream; attach it as (or tee it into) a Tracer.
	TokenStatsCollector = tokenstats.Collector
	// TokenStats is the distilled token telemetry of one simulated run,
	// comparable against the analysis's walk time WT = Θ and TTRT.
	TokenStats = tokenstats.Summary
	// Faults injects failures into simulations (alias of FaultModel kept
	// for compatibility with earlier releases).
	Faults = tokensim.Faults
)

// MultiTracer fans simulator events out to every non-nil tracer, in order.
func MultiTracer(tracers ...Tracer) Tracer { return tokensim.MultiTracer(tracers...) }

// Fault injection and degraded-mode analysis.
type (
	// FaultModel composes the failure processes injected into a
	// simulation: token loss, frame corruption (Bernoulli or
	// Gilbert–Elliott), and station crash/restart with bypass latency.
	FaultModel = faults.Model
	// FaultRecovery prices the claim/beacon recovery that follows a
	// token loss.
	FaultRecovery = faults.Recovery
	// FaultChannel is the frame-corruption channel model.
	FaultChannel = faults.Channel
	// FaultChannelKind selects the corruption channel family.
	FaultChannelKind = faults.ChannelKind
	// FaultCrash is the station crash/restart process.
	FaultCrash = faults.Crash
	// FaultScenario is a named, documented fault model preset.
	FaultScenario = faults.Scenario
	// FaultBudget folds a fault model into the analytic degraded-mode
	// charges (see PDPAnalyzer.FaultReport, TTPAnalyzer.FaultReport).
	FaultBudget = core.FaultBudget
)

// Corruption channel families.
const (
	// ChannelClean disables frame corruption.
	ChannelClean = faults.ChannelClean
	// ChannelBernoulli corrupts frames independently.
	ChannelBernoulli = faults.ChannelBernoulli
	// ChannelGilbertElliott corrupts frames through a two-state bursty
	// channel.
	ChannelGilbertElliott = faults.ChannelGilbertElliott
)

// ParseFaultModel parses a fault-model spec string such as
// "loss:p=1e-3+gilbert:pbad=0.3,burst=16+crash:rate=0.05"; "none" yields an
// inactive model.
func ParseFaultModel(spec string) (FaultModel, error) { return faults.ParseModel(spec) }

// FaultScenarios returns the named built-in fault scenarios (clean,
// noisy-channel, lossy-token, flaky-stations, degraded).
func FaultScenarios() []FaultScenario { return faults.Scenarios() }

// FaultScenarioByName looks up one built-in fault scenario.
func FaultScenarioByName(name string) (FaultScenario, error) {
	return faults.ScenarioByName(name)
}

// CleanFaultBudget is the healthy-ring analytic budget; every fault-aware
// analysis reproduces the clean result bit-identically under it.
func CleanFaultBudget() FaultBudget { return core.CleanFaultBudget() }

// Phasing and token-pass models for the simulators.
const (
	// PhasingSynchronized releases every stream at time zero (the
	// critical instant).
	PhasingSynchronized = tokensim.PhasingSynchronized
	// PhasingRandom draws random initial offsets.
	PhasingRandom = tokensim.PhasingRandom
	// PassMeasured charges geometric token walks in the PDP simulator.
	PassMeasured = tokensim.PassMeasured
	// PassAverageHalfTheta charges the analysis's Θ/2 average.
	PassAverageHalfTheta = tokensim.PassAverageHalfTheta
)

// Experiments.
type (
	// Experiment is one reproduction unit (a figure, table, or claim).
	Experiment = expt.Experiment
	// ExperimentConfig scales experiment cost.
	ExperimentConfig = expt.Config
	// ExperimentReport is an experiment outcome.
	ExperimentReport = expt.Report
	// ExperimentOutcome is one experiment's result within a RunExperiments
	// batch.
	ExperimentOutcome = expt.Outcome
)

// Cancellation and progress observation.
type (
	// Progress observes long-running work: Monte Carlo samples, sweep
	// points, experiment lifecycle, and simulator event-loop advancement.
	// All context-aware entry points accept one (nil disables reporting).
	Progress = progress.Progress
	// ProgressFuncs adapts plain functions to the Progress interface; the
	// zero value ignores everything.
	ProgressFuncs = progress.Funcs
	// CountingProgress tallies progress callbacks with atomic counters,
	// safe for concurrent pipelines.
	CountingProgress = progress.Counter
	// ProgressMeter renders a live single-line progress display (percent,
	// ETA, current sweep point) to a writer, typically stderr.
	ProgressMeter = progress.Meter
)

// NopProgress returns a Progress that ignores every callback.
func NopProgress() Progress { return progress.Nop{} }

// TeeProgress fans callbacks out to several observers.
func TeeProgress(obs ...Progress) Progress { return progress.Tee(obs...) }

// NewProgressMeter returns a live progress meter writing to w;
// totalSamples sets the denominator for percent/ETA (0 disables them).
// Call Close when done to finish the line.
func NewProgressMeter(w io.Writer, totalSamples int64) *ProgressMeter {
	return progress.NewMeter(w, totalSamples)
}

// Serving layer: the request/response schema and engine of ringschedd,
// shared by the HTTP API and the -json modes of schedcheck and breakdown
// so their outputs are byte-comparable.
type (
	// ServiceStreamSpec is the wire form of one message stream.
	ServiceStreamSpec = service.StreamSpec
	// AnalyzeRequest asks for schedulability verdicts.
	AnalyzeRequest = service.AnalyzeRequest
	// AnalyzeResponse carries per-protocol verdicts.
	AnalyzeResponse = service.AnalyzeResponse
	// AnalyzeVerdict is one protocol's verdict.
	AnalyzeVerdict = service.Verdict
	// SweepRequest asks for a breakdown-utilization sweep.
	SweepRequest = service.SweepRequest
	// SweepResponse carries the per-protocol breakdown curves.
	SweepResponse = service.SweepResponse
	// ServiceConfig tunes a Service (cache budget, worker pool, deadlines).
	ServiceConfig = service.Config
	// Service is the ringschedd HTTP API implementation.
	Service = service.Server
)

// NewService builds the ringschedd HTTP API; expose it with
// Service.Handler and stop it with BeginDrain followed by Close.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// Analyze answers one analyze request (the engine behind /v1/analyze and
// schedcheck -json). The response is a pure function of the
// canonicalized request.
func Analyze(ctx context.Context, req AnalyzeRequest) (AnalyzeResponse, error) {
	return service.Analyze(ctx, req)
}

// RunSweep answers one sweep request (the engine behind /v1/sweep and
// breakdown -json). workers bounds parallelism without affecting the
// result; obs may be nil.
func RunSweep(ctx context.Context, req SweepRequest, workers int, obs Progress) (SweepResponse, error) {
	return service.Sweep(ctx, req, workers, obs)
}

// EncodeResponse renders a service response in the canonical byte form
// shared by the server and the -json CLI modes.
func EncodeResponse(v any) ([]byte, error) { return service.Encode(v) }

// ErrUnknownScenario reports a fault-scenario name that is not
// registered; FaultScenarioByName errors match it with errors.Is.
var ErrUnknownScenario = faults.ErrUnknownScenario

// ErrBadFaultSpec reports an unparsable fault-model specification;
// ParseFaultModel errors match it with errors.Is.
var ErrBadFaultSpec = faults.ErrBadSpec

// ErrMaxEvents reports that a simulation exhausted its MaxEvents budget.
var ErrMaxEvents = sim.ErrMaxEvents

// Mbps converts megabits/second to bits/second.
func Mbps(m float64) float64 { return ring.Mbps(m) }

// IEEE8025Plant returns the paper's IEEE 802.5 network at the given
// bandwidth (100 stations, 100 m spacing, 4-bit station delay).
func IEEE8025Plant(bandwidthBPS float64) RingConfig { return ring.IEEE8025(bandwidthBPS) }

// FDDIPlant returns the paper's FDDI network at the given bandwidth
// (100 stations, 100 m spacing, 75-bit station delay).
func FDDIPlant(bandwidthBPS float64) RingConfig { return ring.FDDI(bandwidthBPS) }

// PaperFrame returns the 64-byte/112-bit frame format of the comparison.
func PaperFrame() FrameSpec { return frame.PaperSpec() }

// PaperGenerator returns the paper's workload distribution: 100 streams,
// uniform periods with mean 100 ms and max/min ratio 10.
func PaperGenerator() Generator { return message.PaperGenerator() }

// NewStandardPDP returns the Theorem 4.1 analyzer for the unmodified IEEE
// 802.5 implementation on the paper's plant.
func NewStandardPDP(bandwidthBPS float64) PDPAnalyzer { return core.NewStandardPDP(bandwidthBPS) }

// NewModifiedPDP returns the Theorem 4.1 analyzer for the modified
// implementation on the paper's plant.
func NewModifiedPDP(bandwidthBPS float64) PDPAnalyzer { return core.NewModifiedPDP(bandwidthBPS) }

// NewTTP returns the Theorem 5.1 analyzer on the paper's FDDI plant.
func NewTTP(bandwidthBPS float64) TTPAnalyzer { return core.NewTTP(bandwidthBPS) }

// PaperEstimator returns a Monte Carlo estimator with the paper's workload
// distribution.
func PaperEstimator(samples int, seed int64) Estimator {
	return breakdown.PaperEstimator(samples, seed)
}

// PaperBandwidths returns the Figure 1 sweep grid: 1 Mbps to 1 Gbps,
// log-spaced with pointsPerDecade points per decade (0 = default density).
func PaperBandwidths(pointsPerDecade int) []float64 {
	return breakdown.PaperBandwidths(pointsPerDecade)
}

// Saturate drives a message set to its breakdown load under an analyzer.
func Saturate(m MessageSet, a Analyzer, bandwidthBPS float64, opts SaturateOptions) (Saturation, error) {
	return breakdown.Saturate(m, a, bandwidthBPS, opts)
}

// Phasing selects stream arrival offsets for simulation workloads.
type Phasing = tokensim.Phasing

// NewWorkload binds a message set to ring stations for simulation. The rng
// is only consulted for PhasingRandom.
func NewWorkload(m MessageSet, stations int, phasing Phasing, rng *rand.Rand) (Workload, error) {
	return tokensim.NewWorkload(m, stations, phasing, rng)
}

// NewTTPSimulation builds a TTP simulator whose TTRT and allocations come
// from the Theorem 5.1 analysis of the given set.
func NewTTPSimulation(t TTPAnalyzer, m MessageSet, w Workload) (TTPSimulation, error) {
	return tokensim.NewTTPSimFromAnalysis(t, m, w)
}

// Bridged ring-of-rings topologies: multiple rings joined by
// store-and-forward bridges, with end-to-end flow delay bounds from
// per-ring Kamat–Zhao verdicts composed with arrival-curve propagation.
// The single-ring API above is the 1-node special case.
type (
	// Topology is a validated graph of ring nodes, bridge edges and
	// end-to-end flows.
	Topology = topology.Topology
	// TopologyNode is one ring in the graph.
	TopologyNode = topology.Node
	// TopologyBridge is one store-and-forward bridge edge.
	TopologyBridge = topology.Bridge
	// TopologyFlow is one periodic end-to-end flow.
	TopologyFlow = topology.Flow
	// TopologyProtocol selects a node's MAC protocol.
	TopologyProtocol = topology.Protocol
	// TopologyReport is the full bridged analysis: per-ring verdicts,
	// per-bridge network-calculus bounds, per-flow end-to-end bounds.
	TopologyReport = core.TopologyReport
	// TopologySimulation composes the PDP/TTP discrete-event engines
	// through bridge queues into one multi-ring simulation.
	TopologySimulation = tokensim.TopologySim
	// TopologySimResult is a multi-ring simulation outcome.
	TopologySimResult = tokensim.TopologyResult
	// TopologySaturation is a topology driven to its breakdown load.
	TopologySaturation = breakdown.TopologySaturation
	// TopologyPoint is one point of a topology breakdown sweep.
	TopologyPoint = breakdown.TopologyPoint
	// TopologyRequest asks the serving layer for a bridged analysis.
	TopologyRequest = service.TopologyRequest
	// TopologyResponse is the wire form of a bridged analysis.
	TopologyResponse = service.TopologyResponse
)

// Topology node protocols.
const (
	// Topology8025 runs a node under the standard priority driven protocol.
	Topology8025 = topology.Standard8025
	// Topology8025Mod runs a node under the modified variant.
	Topology8025Mod = topology.Modified8025
	// TopologyFDDI runs a node under the timed token protocol.
	TopologyFDDI = topology.FDDI
)

// ParseTopology parses the compact topology spec grammar
// ("ring:name=a,proto=fddi,bw=100e6 + bridge:a=a,b=b,latency=100us +
// flow:name=f,src=a,dst=b,period=100ms,bits=4096") into a validated,
// canonical topology.
func ParseTopology(spec string) (Topology, error) { return topology.Parse(spec) }

// AnalyzeTopology computes the bridged verdict: every ring analyzed under
// its own protocol, arrival curves propagated across bridges, and one
// end-to-end delay bound per flow.
func AnalyzeTopology(t Topology) (TopologyReport, error) { return core.AnalyzeTopology(t) }

// AnalyzeTopologyRequest answers one serving-layer topology request (the
// engine behind /v1/topology/analyze and schedcheck -topology -json).
func AnalyzeTopologyRequest(ctx context.Context, req TopologyRequest) (TopologyResponse, error) {
	return service.AnalyzeTopology(ctx, req)
}

// SaturateTopology drives a topology's flows to their common breakdown
// scale.
func SaturateTopology(t Topology, opts SaturateOptions) (TopologySaturation, error) {
	return breakdown.SaturateTopology(t, opts)
}

// SweepTopology computes the breakdown scale across a grid of bandwidth
// multipliers (the Figure 1 methodology lifted to bridged topologies).
func SweepTopology(ctx context.Context, t Topology, bandwidthScales []float64, opts SaturateOptions, obs Progress) ([]TopologyPoint, error) {
	return breakdown.SweepTopology(ctx, t, bandwidthScales, opts, obs)
}

// RMResult is the detailed outcome of a rate-monotonic exact test.
type RMResult = rma.Result

// ResponseTimeAnalysis runs the exact rate-monotonic test on an RM-ordered
// task set with a uniform blocking term (the engine behind Theorem 4.1);
// see also TaskSet.SortRM.
func ResponseTimeAnalysis(ts TaskSet, blocking float64) (RMResult, error) {
	return rma.ResponseTimeAnalysis(ts, blocking)
}

// RMExactTest runs the Lehoczky–Sha–Ding scheduling-point criterion
// directly (the reference implementation; equivalent to
// ResponseTimeAnalysis).
func RMExactTest(ts TaskSet, blocking float64) (RMResult, error) {
	return rma.ExactTest(ts, blocking)
}

// LiuLaylandBound is the classical sufficient utilization bound
// n·(2^{1/n} − 1).
func LiuLaylandBound(n int) float64 { return rma.LiuLaylandBound(n) }

// HyperbolicSchedulable is the Bini–Buttazzo sufficient test Π(U_i+1) ≤ 2.
func HyperbolicSchedulable(ts TaskSet) bool { return rma.HyperbolicSchedulable(ts) }

// Experiments lists every reproduction experiment (sorted by ID).
func Experiments() []Experiment { return expt.All() }

// ExperimentByID looks up one reproduction experiment.
func ExperimentByID(id string) (Experiment, error) { return expt.ByID(id) }

// RunExperiment executes one experiment with cancellation and progress
// reporting (obs may be nil).
func RunExperiment(ctx context.Context, e Experiment, cfg ExperimentConfig, obs Progress) (ExperimentReport, error) {
	return expt.RunOne(ctx, e, cfg, obs)
}

// RunExperiments executes independent experiments concurrently and returns
// one outcome per experiment in deterministic ID order. Cancelling ctx
// aborts promptly; never-dispatched experiments carry Err = ctx.Err().
func RunExperiments(ctx context.Context, cfg ExperimentConfig, obs Progress, exps []Experiment) []ExperimentOutcome {
	return expt.RunAll(ctx, cfg, obs, exps)
}
