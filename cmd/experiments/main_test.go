package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"FIG1", "CLAIM-LOWBW", "CLAIM-TTRT", "VAL-SIM", "BASE-RM88"} {
		if !strings.Contains(got, want) {
			t.Errorf("list missing %q:\n%s", want, got)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-run", "CLAIM-33PCT", "-quick"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "=== CLAIM-33PCT [PASS]") {
		t.Errorf("experiment output:\n%s", got)
	}
}

func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-run", "CLAIM-33PCT", "-quick", "-json"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	var reports []struct {
		ID   string `json:"id"`
		Pass bool   `json:"pass"`
	}
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 1 || reports[0].ID != "CLAIM-33PCT" || !reports[0].Pass {
		t.Errorf("reports = %+v", reports)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-run", "NOPE"}, &out, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestNoModeFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), nil, &out, io.Discard); err == nil {
		t.Error("missing mode flag accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-zzz"}, &out, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
}
