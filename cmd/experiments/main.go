// Command experiments runs the paper-reproduction experiments registered
// in the library (one per figure, table, and quantitative claim — see
// DESIGN.md's experiment index) and prints their tables and notes.
//
// Usage:
//
//	experiments -list
//	experiments -run FIG1 -samples 200
//	experiments -all -quick
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ringsched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		list    = fs.Bool("list", false, "list experiment IDs and exit")
		runID   = fs.String("run", "", "run a single experiment by ID")
		all     = fs.Bool("all", false, "run every experiment")
		samples = fs.Int("samples", 100, "Monte Carlo samples per estimate")
		seed    = fs.Int64("seed", 1993, "random seed")
		points  = fs.Int("points", 3, "sweep points per bandwidth decade")
		quick   = fs.Bool("quick", false, "trim grids and samples for a fast pass")
		asJSON  = fs.Bool("json", false, "emit machine-readable JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range ringsched.Experiments() {
			fmt.Fprintf(out, "%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := ringsched.ExperimentConfig{
		Samples:         *samples,
		Seed:            *seed,
		PointsPerDecade: *points,
		Quick:           *quick,
	}

	var experiments []ringsched.Experiment
	switch {
	case *runID != "":
		e, err := ringsched.ExperimentByID(*runID)
		if err != nil {
			return err
		}
		experiments = []ringsched.Experiment{e}
	case *all:
		experiments = ringsched.Experiments()
	default:
		fs.Usage()
		return fmt.Errorf("one of -list, -run or -all is required")
	}

	failed := 0
	type jsonReport struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		Pass    bool               `json:"pass"`
		Seconds float64            `json:"seconds"`
		Values  map[string]float64 `json:"values,omitempty"`
		Notes   []string           `json:"notes,omitempty"`
		Text    string             `json:"text"`
	}
	var jsonOut []jsonReport
	for _, e := range experiments {
		start := time.Now()
		rep, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if !rep.Pass {
			failed++
		}
		if *asJSON {
			jsonOut = append(jsonOut, jsonReport{
				ID:      rep.ID,
				Title:   e.Title,
				Pass:    rep.Pass,
				Seconds: time.Since(start).Seconds(),
				Values:  rep.Values,
				Notes:   rep.Notes,
				Text:    rep.Text,
			})
			continue
		}
		status := "PASS"
		if !rep.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(out, "=== %s [%s] %s (%.1fs)\n", e.ID, status, e.Title, time.Since(start).Seconds())
		fmt.Fprintln(out, rep.Text)
		for _, n := range rep.Notes {
			fmt.Fprintf(out, "note: %s\n", n)
		}
		fmt.Fprintln(out)
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) did not reproduce the paper's claim", failed)
	}
	return nil
}
