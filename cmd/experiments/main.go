// Command experiments runs the paper-reproduction experiments registered
// in the library (one per figure, table, and quantitative claim — see
// DESIGN.md's experiment index) and prints their tables and notes.
//
// Usage:
//
//	experiments -list
//	experiments -run FIG1 -samples 200
//	experiments -all -quick
//	experiments -all -workers 8 -timeout 10m
//
// With -all, independent experiments run concurrently (output stays in
// deterministic ID order). A live progress line streams to stderr;
// Ctrl-C stops promptly and the completed experiments still print.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"

	"ringsched"
	"ringsched/internal/cli"
	"ringsched/internal/progress"
	"ringsched/internal/trace"
)

func main() {
	cli.Main("experiments", run)
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		list    = fs.Bool("list", false, "list experiment IDs and exit")
		runID   = fs.String("run", "", "run a single experiment by ID")
		all     = fs.Bool("all", false, "run every experiment")
		samples = fs.Int("samples", 100, "Monte Carlo samples per estimate")
		seed    = fs.Int64("seed", 1993, "random seed")
		points  = fs.Int("points", 3, "sweep points per bandwidth decade")
		quick   = fs.Bool("quick", false, "trim grids and samples for a fast pass")
		asJSON  = fs.Bool("json", false, "emit machine-readable JSON instead of text")
		timeout = fs.Duration("timeout", 0, "abort after this duration (0 = none)")
		workers = fs.Int("workers", 0, "parallel worker budget across experiments and samples (0 = all cores)")
		quiet   = fs.Bool("quiet", false, "suppress the live progress meter on stderr")
	)
	var obsf cli.Obs
	obsf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	ctx, logger, err := obsf.Setup(ctx, errw)
	if err != nil {
		return err
	}
	defer obsf.Close()
	ctx, sp := trace.Start(ctx, "cli.experiments")
	defer sp.End()

	if *list {
		for _, e := range ringsched.Experiments() {
			fmt.Fprintf(out, "%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := ringsched.ExperimentConfig{
		Samples:         *samples,
		Seed:            *seed,
		PointsPerDecade: *points,
		Quick:           *quick,
		Workers:         *workers,
	}

	var experiments []ringsched.Experiment
	switch {
	case *runID != "":
		e, err := ringsched.ExperimentByID(*runID)
		if err != nil {
			return err
		}
		experiments = []ringsched.Experiment{e}
	case *all:
		experiments = ringsched.Experiments()
	default:
		fs.Usage()
		return fmt.Errorf("one of -list, -run or -all is required")
	}
	sp.SetAttr("experiments", len(experiments))
	logger.LogAttrs(ctx, slog.LevelDebug, "experiments selected",
		slog.Int("count", len(experiments)),
		slog.Int("samples", *samples),
		slog.Bool("quick", *quick))

	var obs ringsched.Progress
	var meter *progress.Meter
	if !*quiet {
		meter = progress.NewMeter(errw, 0)
		obs = meter
	}
	outcomes := ringsched.RunExperiments(ctx, cfg, obs, experiments)
	if meter != nil {
		meter.Close()
	}

	failed, errored := 0, 0
	type jsonReport struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		Pass    bool               `json:"pass"`
		Seconds float64            `json:"seconds"`
		Error   string             `json:"error,omitempty"`
		Values  map[string]float64 `json:"values,omitempty"`
		Notes   []string           `json:"notes,omitempty"`
		Text    string             `json:"text"`
	}
	var jsonOut []jsonReport
	for _, o := range outcomes {
		e, rep := o.Experiment, o.Report
		if o.Err != nil {
			errored++
			if *asJSON {
				jsonOut = append(jsonOut, jsonReport{
					ID: e.ID, Title: e.Title, Seconds: o.Elapsed.Seconds(),
					Error: o.Err.Error(),
				})
			} else {
				fmt.Fprintf(out, "=== %s [ABORT] %s: %v\n\n", e.ID, e.Title, o.Err)
			}
			continue
		}
		if !rep.Pass {
			failed++
		}
		if *asJSON {
			jsonOut = append(jsonOut, jsonReport{
				ID:      rep.ID,
				Title:   e.Title,
				Pass:    rep.Pass,
				Seconds: o.Elapsed.Seconds(),
				Values:  rep.Values,
				Notes:   rep.Notes,
				Text:    rep.Text,
			})
			continue
		}
		status := "PASS"
		if !rep.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(out, "=== %s [%s] %s (%.1fs)\n", e.ID, status, e.Title, o.Elapsed.Seconds())
		fmt.Fprintln(out, rep.Text)
		for _, n := range rep.Notes {
			fmt.Fprintf(out, "note: %s\n", n)
		}
		fmt.Fprintln(out)
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			return err
		}
	}
	if errored > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("interrupted with %d of %d experiment(s) completed: %w",
				len(outcomes)-errored, len(outcomes), err)
		}
		return fmt.Errorf("%d experiment(s) aborted", errored)
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) did not reproduce the paper's claim", failed)
	}
	return nil
}
