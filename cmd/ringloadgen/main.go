// Command ringloadgen is an open-loop load generator for ringschedd: it
// issues requests at a fixed arrival rate regardless of how fast the
// server answers (the arrival process of a real client population, and
// the only kind of load that exposes overload collapse — a closed loop
// self-throttles exactly when the server starts struggling), then
// reports latency percentiles, per-outcome counts, and goodput.
//
// Goodput counts only successful answers that arrived within the
// request deadline — an answer that shows up after nobody can use it is
// work wasted, not work done. Comparing goodput at 2× the saturation
// rate with shedding on (-queue-depth default) versus off
// (-queue-depth -1 and no deadlines) is the acceptance demo for the
// admission controller; scripts/overload_demo.sh automates it.
//
// Usage:
//
//	ringloadgen -base http://127.0.0.1:8080 -rps 200 -duration 10s
//	ringloadgen -mix sweep -distinct 0 -deadline-ms 500 -out report.json
//	ringloadgen -rps 500 -min-goodput 100 -max-p99-ms 800 -max-error-rate 0.2
//
// The summary is stable "key value" lines on stdout (awk-friendly);
// -out additionally writes the full JSON report. The -min-goodput,
// -max-p99-ms and -max-error-rate flags turn the run into a pass/fail
// check with a non-zero exit, for CI smoke jobs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ringsched/internal/cli"
)

func main() {
	cli.Main("ringloadgen", run)
}

// report is the machine-readable run summary.
type report struct {
	Sent            int64   `json:"sent"`
	OK              int64   `json:"ok"`
	Good            int64   `json:"good"` // OK and within deadline
	Shed            int64   `json:"shed"` // 503 overloaded/unavailable
	RateLimited     int64   `json:"rateLimited"`
	Timeouts        int64   `json:"timeouts"` // 504 or client deadline
	Errors          int64   `json:"errors"`   // other 5xx + transport
	TransportErrors int64   `json:"transportErrors"`
	DurationSec     float64 `json:"durationSec"`
	GoodputRPS      float64 `json:"goodputRPS"`
	ErrorRate       float64 `json:"errorRate"`
	P50Ms           float64 `json:"p50Ms"`
	P90Ms           float64 `json:"p90Ms"`
	P99Ms           float64 `json:"p99Ms"`
	P999Ms          float64 `json:"p999Ms"`
	Codes           map[string]int64
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ringloadgen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		base = fs.String("base", "http://127.0.0.1:8080",
			"target base URL(s), comma-separated; multiple targets are round-robined per request")
		target = fs.String("target", "",
			"additional target base URL(s), comma-separated; appended to -base targets")
		rps      = fs.Float64("rps", 100, "open-loop arrival rate, requests/second")
		duration = fs.Duration("duration", 5*time.Second, "load duration")
		mix      = fs.String("mix", "analyze", `request mix: "analyze" (cheap) or "sweep" (Monte Carlo, expensive)`)
		distinct = fs.Int("distinct", 16,
			"distinct request bodies to cycle through (cache busting); 0 = every request unique")
		deadlineMS = fs.Int64("deadline-ms", 0,
			"per-request deadline, propagated via X-Ringsched-Deadline-Ms and enforced client-side (0 = none)")
		goodMS = fs.Int64("good-ms", 0,
			"latency budget for counting an answer as goodput, without cancelling slower requests (0 = use -deadline-ms)")
		clientID = fs.String("client-id", "", "X-Ringsched-Client identity (rate-limit key)")
		streams  = fs.Int("sweep-streams", 8, "streams per sweep request (mix=sweep)")
		samples  = fs.Int("sweep-samples", 400, "Monte Carlo samples per sweep point (mix=sweep)")
		seed     = fs.Int64("seed", 0, "base seed for request bodies (0 = derive from clock, cold cache each run)")
		outPath  = fs.String("out", "", "also write the JSON report to this file")

		minGoodput = fs.Float64("min-goodput", 0, "fail if goodput (good answers/sec) is below this (0 = off)")
		maxP99     = fs.Float64("max-p99-ms", 0, "fail if p99 latency exceeds this many milliseconds (0 = off)")
		maxErrRate = fs.Float64("max-error-rate", -1,
			"fail if (transport + non-shed 5xx errors)/sent exceeds this fraction (negative = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rps <= 0 || *duration <= 0 {
		return fmt.Errorf("ringloadgen: -rps and -duration must be positive")
	}
	if *mix != "analyze" && *mix != "sweep" {
		return fmt.Errorf("ringloadgen: unknown -mix %q", *mix)
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano() % (1 << 30)
	}
	targets := parseTargets(*base, *target)
	if len(targets) == 0 {
		return fmt.Errorf("ringloadgen: no targets (set -base and/or -target)")
	}

	st := &state{
		codes:      map[string]int64{},
		deadline:   time.Duration(*deadlineMS) * time.Millisecond,
		goodBudget: time.Duration(*goodMS) * time.Millisecond,
	}
	if st.goodBudget <= 0 {
		st.goodBudget = st.deadline
	}
	hc := &http.Client{}

	interval := time.Duration(float64(time.Second) / *rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()
	// Requests launched near the cutoff get a grace period to finish
	// instead of being cancelled mid-flight (which would erase exactly
	// the tail latencies an overload run exists to measure).
	graceCtx, gcancel := context.WithTimeout(ctx, *duration+15*time.Second)
	defer gcancel()

	var wg sync.WaitGroup
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	start := time.Now()
	var n int64
loop:
	for {
		select {
		case <-runCtx.Done():
			break loop
		case <-ticker.C:
			i := n
			n++
			wg.Add(1)
			go func() {
				defer wg.Done()
				st.issue(graceCtx, hc, targets[i%int64(len(targets))], *mix,
					body(*mix, *seed, i, *distinct, *streams, *samples), *clientID)
			}()
		}
	}
	// Let stragglers finish: their contexts die with runCtx, so this
	// wait is bounded.
	wg.Wait()
	elapsed := time.Since(start)

	rep := st.summarize(elapsed)
	writeSummary(out, rep)
	if *outPath != "" {
		j, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(j, '\n'), 0o644); err != nil {
			return err
		}
	}

	var failures []string
	if *minGoodput > 0 && rep.GoodputRPS < *minGoodput {
		failures = append(failures, fmt.Sprintf("goodput %.1f/s below floor %.1f/s", rep.GoodputRPS, *minGoodput))
	}
	if *maxP99 > 0 && rep.P99Ms > *maxP99 {
		failures = append(failures, fmt.Sprintf("p99 %.1fms above ceiling %.1fms", rep.P99Ms, *maxP99))
	}
	if *maxErrRate >= 0 && rep.ErrorRate > *maxErrRate {
		failures = append(failures, fmt.Sprintf("error rate %.3f above budget %.3f", rep.ErrorRate, *maxErrRate))
	}
	if len(failures) > 0 {
		return fmt.Errorf("ringloadgen: thresholds violated: %s", strings.Join(failures, "; "))
	}
	return nil
}

// parseTargets merges the -base and -target flag values into the ordered
// target list: comma-separated, whitespace-tolerant, bare host:port
// spellings normalized to http URLs, trailing slashes dropped.
func parseTargets(base, target string) []string {
	var out []string
	for _, chunk := range []string{base, target} {
		for _, t := range strings.Split(chunk, ",") {
			t = strings.TrimSuffix(strings.TrimSpace(t), "/")
			if t == "" {
				continue
			}
			if !strings.Contains(t, "://") {
				t = "http://" + t
			}
			out = append(out, t)
		}
	}
	return out
}

// body renders request i's JSON payload. Distinct bodies canonicalize to
// distinct cache keys, so -distinct controls how much of the load the
// result cache can absorb.
func body(mix string, seed, i int64, distinct, streams, samples int) string {
	v := i
	if distinct > 0 {
		v = i % int64(distinct)
	}
	switch mix {
	case "sweep":
		return fmt.Sprintf(`{"bandwidthsMbps":[10,50,100],"streams":%d,"samples":%d,"seed":%d}`,
			streams, samples, seed+v)
	default:
		// Vary the bandwidth to vary the canonical key; the kernel cost is
		// flat per distinct body.
		return fmt.Sprintf(
			`{"bandwidthMbps":%d,"streams":[{"name":"s","periodMs":10,"lengthBits":4096},{"name":"t","periodMs":50,"lengthBits":65536}]}`,
			100+v)
	}
}

// state accumulates outcomes across request goroutines.
type state struct {
	deadline   time.Duration
	goodBudget time.Duration

	mu        sync.Mutex
	sent      int64
	ok        int64
	good      int64
	shed      int64
	limited   int64
	timeouts  int64
	errors    int64
	transport int64
	codes     map[string]int64
	latencies []float64 // seconds, successful responses only
}

func (st *state) issue(ctx context.Context, hc *http.Client, base, mix, payload, clientID string) {
	path := "/v1/analyze"
	if mix == "sweep" {
		path = "/v1/sweep"
	}
	if st.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, st.deadline)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, strings.NewReader(payload))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if clientID != "" {
		req.Header.Set("X-Ringsched-Client", clientID)
	}
	if st.deadline > 0 {
		req.Header.Set("X-Ringsched-Deadline-Ms", fmt.Sprintf("%d", st.deadline.Milliseconds()))
	}

	start := time.Now()
	resp, err := hc.Do(req)
	elapsed := time.Since(start)

	st.mu.Lock()
	defer st.mu.Unlock()
	st.sent++
	if err != nil {
		if ctx.Err() != nil {
			st.timeouts++
			st.codes["client_timeout"]++
		} else {
			st.transport++
			st.errors++
			st.codes["transport"]++
		}
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	st.codes[fmt.Sprintf("%d", resp.StatusCode)]++
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		st.ok++
		st.latencies = append(st.latencies, elapsed.Seconds())
		if st.goodBudget <= 0 || elapsed <= st.goodBudget {
			st.good++
		}
	case resp.StatusCode == http.StatusServiceUnavailable:
		st.shed++
	case resp.StatusCode == http.StatusTooManyRequests:
		st.limited++
	case resp.StatusCode == http.StatusGatewayTimeout:
		st.timeouts++
	default:
		st.errors++
	}
}

func (st *state) summarize(elapsed time.Duration) report {
	st.mu.Lock()
	defer st.mu.Unlock()
	sort.Float64s(st.latencies)
	pct := func(q float64) float64 {
		if len(st.latencies) == 0 {
			return 0
		}
		idx := int(q * float64(len(st.latencies)-1))
		return st.latencies[idx] * 1e3
	}
	rep := report{
		Sent: st.sent, OK: st.ok, Good: st.good, Shed: st.shed,
		RateLimited: st.limited, Timeouts: st.timeouts,
		Errors: st.errors, TransportErrors: st.transport,
		DurationSec: elapsed.Seconds(),
		P50Ms:       pct(0.50), P90Ms: pct(0.90), P99Ms: pct(0.99), P999Ms: pct(0.999),
		Codes: st.codes,
	}
	if elapsed > 0 {
		rep.GoodputRPS = float64(st.good) / elapsed.Seconds()
	}
	if st.sent > 0 {
		rep.ErrorRate = float64(st.errors) / float64(st.sent)
	}
	return rep
}

// writeSummary prints the stable key-value lines CI scripts parse.
func writeSummary(w io.Writer, r report) {
	fmt.Fprintf(w, "sent %d\n", r.Sent)
	fmt.Fprintf(w, "ok %d\n", r.OK)
	fmt.Fprintf(w, "good %d\n", r.Good)
	fmt.Fprintf(w, "shed %d\n", r.Shed)
	fmt.Fprintf(w, "rate_limited %d\n", r.RateLimited)
	fmt.Fprintf(w, "timeouts %d\n", r.Timeouts)
	fmt.Fprintf(w, "errors %d\n", r.Errors)
	fmt.Fprintf(w, "transport_errors %d\n", r.TransportErrors)
	fmt.Fprintf(w, "duration_sec %.2f\n", r.DurationSec)
	fmt.Fprintf(w, "goodput_rps %.2f\n", r.GoodputRPS)
	fmt.Fprintf(w, "error_rate %.4f\n", r.ErrorRate)
	fmt.Fprintf(w, "p50_ms %.2f\n", r.P50Ms)
	fmt.Fprintf(w, "p90_ms %.2f\n", r.P90Ms)
	fmt.Fprintf(w, "p99_ms %.2f\n", r.P99Ms)
	fmt.Fprintf(w, "p999_ms %.2f\n", r.P999Ms)
}
