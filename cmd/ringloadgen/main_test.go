package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ringsched/internal/service"
)

func startService(t *testing.T, cfg service.Config) string {
	t.Helper()
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

// summaryValue extracts one "key value" line from the stdout report.
func summaryValue(t *testing.T, out, key string) float64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + key + ` ([0-9.]+)$`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("summary missing %q:\n%s", key, out)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestLoadgenReportsGoodputAndPercentiles(t *testing.T) {
	base := startService(t, service.Config{})
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-base", base, "-rps", "200", "-duration", "500ms",
		"-mix", "analyze", "-distinct", "4", "-deadline-ms", "2000",
		"-client-id", "loadgen-test", "-seed", "42",
	}, &out, io.Discard)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	sent := summaryValue(t, out.String(), "sent")
	good := summaryValue(t, out.String(), "good")
	if sent < 50 {
		t.Errorf("sent = %g, want a real request volume", sent)
	}
	if good == 0 || summaryValue(t, out.String(), "goodput_rps") == 0 {
		t.Errorf("no goodput measured:\n%s", out.String())
	}
	if summaryValue(t, out.String(), "p99_ms") < summaryValue(t, out.String(), "p50_ms") {
		t.Errorf("p99 < p50:\n%s", out.String())
	}
}

func TestLoadgenWritesJSONReport(t *testing.T) {
	base := startService(t, service.Config{})
	path := t.TempDir() + "/report.json"
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-base", base, "-rps", "100", "-duration", "300ms", "-out", path, "-seed", "7",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"sent"`, `"goodputRPS"`, `"p99Ms"`} {
		if !strings.Contains(raw, key) {
			t.Errorf("JSON report missing %s:\n%s", key, raw)
		}
	}
}

func TestLoadgenThresholdsFailTheRun(t *testing.T) {
	base := startService(t, service.Config{})
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-base", base, "-rps", "50", "-duration", "200ms",
		"-min-goodput", "1000000", "-seed", "7",
	}, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "goodput") {
		t.Fatalf("impossible goodput floor accepted: %v", err)
	}
}

func TestLoadgenCountsShedResponses(t *testing.T) {
	// One worker, a queue bound of 1, and expensive unique sweeps: the
	// open-loop arrival rate swamps the pool and the shed counter must
	// light up.
	base := startService(t, service.Config{Workers: 1, QueueDepth: 1})
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-base", base, "-rps", "100", "-duration", "700ms",
		"-mix", "sweep", "-distinct", "0", "-sweep-samples", "40000", "-sweep-streams", "10",
		"-deadline-ms", "3000", "-seed", "99",
	}, &out, io.Discard)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if shed := summaryValue(t, out.String(), "shed"); shed == 0 {
		t.Errorf("open-loop overload never shed:\n%s", out.String())
	}
}

func TestLoadgenFlagValidation(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-rps", "0"},
		{"-duration", "0s"},
		{"-mix", "bogus"},
		{"-bogus"},
	} {
		if err := run(context.Background(), args, &out, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}

func TestParseTargets(t *testing.T) {
	got := parseTargets(" http://a:1/, b:2 ", "c:3,,")
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if len(got) != len(want) {
		t.Fatalf("parseTargets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("target[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if parseTargets("", "") != nil {
		t.Error("empty flags must yield no targets")
	}
}

func TestLoadgenRoundRobinsTargets(t *testing.T) {
	a := startService(t, service.Config{})
	b := startService(t, service.Config{})
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-base", a + "," + b, "-rps", "100", "-duration", "400ms",
		"-distinct", "4", "-seed", "11",
	}, &out, io.Discard)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if ok := summaryValue(t, out.String(), "ok"); ok < 10 {
		t.Fatalf("ok = %g across two targets:\n%s", ok, out.String())
	}
	// Both targets must actually have served traffic: with two targets
	// and round-robin by request index, each sees about half the load.
	for name, base := range map[string]string{"a": a, "b": b} {
		resp, err := httpGet(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if !regexp.MustCompile(`(?m)^ringschedd_requests_total\{.*endpoint="analyze".*\} [1-9]`).MatchString(resp) {
			t.Errorf("target %s served no analyze requests", name)
		}
	}
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
