package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer: run() writes the listen
// line while the test polls for it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`msg=listening addr=(\S+)`)

func TestServeAnalyzeAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var errw syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"}, io.Discard, &errw)
	}()

	var base string
	for deadline := time.Now().Add(5 * time.Second); base == ""; {
		if m := listenLine.FindStringSubmatch(errw.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened; stderr:\n%s", errw.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body := `{"bandwidthMbps":100,"streams":[{"periodMs":10,"lengthBits":4096}]}`
	resp, err = http.Post(base+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"verdicts"`) {
		t.Fatalf("analyze = %d %s", resp.StatusCode, raw)
	}

	cancel() // SIGINT equivalent
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if out := errw.String(); !strings.Contains(out, "msg=stopped") {
		t.Errorf("missing shutdown message:\n%s", out)
	}
}

func TestFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, &out, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &out, io.Discard); err == nil {
		t.Error("bad listen address accepted")
	}
	if err := run(context.Background(), []string{"-chaos", "latency:p=1.5"}, &out, io.Discard); err == nil {
		t.Error("out-of-range chaos probability accepted")
	}
	if err := run(context.Background(), []string{"-chaos", "gibberish"}, &out, io.Discard); err == nil {
		t.Error("malformed chaos spec accepted")
	}
}
