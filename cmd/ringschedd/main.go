// Command ringschedd serves schedulability analysis over HTTP: the
// Theorem 4.1/5.1 verdicts (/v1/analyze), Figure 1-style breakdown sweeps
// with optional server-sent-event progress (/v1/sweep), the reproduction
// experiments (/v1/experiments), plus /healthz and Prometheus-text
// /metrics.
//
// Repeated and concurrent identical requests are served from a sharded
// LRU result cache and a coalescing worker pool: the same question is
// computed once, however many clients ask. SIGINT/SIGTERM drains
// gracefully — new requests get 503 while in-flight work finishes.
//
// With -peers and -advertise, N ringschedd processes form a sharded
// cluster over a consistent-hash ring: a cache miss on a key another
// member owns is filled from that owner over /v1/peer/fill (bounded by
// -peer-fill-timeout, falling back to local compute), so an identical
// burst anywhere in the cluster costs one computation cluster-wide. Put
// cmd/ringsched-lb in front to route clients by shard ownership.
//
// Every /v1/* response carries an X-Ringsched-Trace header; feeding it to
// /debug/traces?trace=<id> returns that request's span tree (handler →
// canonicalize → cache → kernel → encode). Spans also drive the
// ringschedd_stage_seconds histograms on /metrics, and net/http/pprof is
// mounted under /debug/pprof/.
//
// Usage:
//
//	ringschedd                                # serve on :8080
//	ringschedd -addr 127.0.0.1:9000 -workers 8 -cache-bytes 33554432
//	ringschedd -addr :8081 -advertise 10.0.0.1:8081 -peers 10.0.0.2:8081,10.0.0.3:8081
//	ringschedd -log-format json -log-level debug -trace-out spans.jsonl
//	curl -s localhost:8080/healthz
//	curl -s -XPOST -d '{"bandwidthMbps":100,"streams":[{"periodMs":10,"lengthBits":4096}]}' \
//	    localhost:8080/v1/analyze
//	curl -s "localhost:8080/debug/traces?trace=$TRACE_ID"
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	"ringsched/internal/cli"
	"ringsched/internal/resilience"
	"ringsched/internal/service"
)

func main() {
	cli.Main("ringschedd", run)
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ringschedd", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		cacheBytes = fs.Int64("cache-bytes", 64<<20, "result cache byte budget")
		workers    = fs.Int("workers", 0, "concurrent computations (0 = all cores)")
		jobTimeout = fs.Duration("job-timeout", 5*time.Minute, "per-computation deadline (negative = none)")
		drain      = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain budget")
		spans      = fs.Int("trace-spans", 4096, "finished spans retained for /debug/traces")
		queueDepth = fs.Int("queue-depth", 0,
			"max computations waiting for a worker before arrivals are shed with 503 (0 = 4x workers, negative = unbounded)")
		clientRPS = fs.Float64("client-rps", 0,
			"per-client rate limit in requests/second, keyed by peer host qualified by X-Ringsched-Client (0 = off)")
		clientBurst = fs.Float64("client-burst", 0, "per-client burst allowance (0 = 2x client-rps)")
		maxClients  = fs.Int("max-clients", 0, "resident rate-limiter buckets (0 = 1024)")
		chaosSpec   = fs.String("chaos", "",
			`deterministic fault injection, e.g. "latency:p=0.2,ms=30+error:p=0.1,code=503+reset:p=0.02+seed:n=7" (empty = off)`)
		sseKeepAlive = fs.Duration("sse-keepalive", 15*time.Second,
			"idle heartbeat interval for progress streams (negative = off)")
		peers = fs.String("peers", "",
			"comma-separated peer advertise addresses (host:port,...) forming a sharded cluster; requires -advertise")
		advertise = fs.String("advertise", "",
			"this process's own cluster address (host:port) as peers reach it")
		peerFillTimeout = fs.Duration("peer-fill-timeout", 2*time.Second,
			"deadline for one peer cache-fill round trip before computing locally")
		peerVNodes = fs.Int("peer-vnodes", 0,
			"consistent-hash virtual nodes per member (0 = default 128; all members must agree)")
		maxRings = fs.Int("max-rings", 0,
			"resident /v1/rings sessions (0 = default 4096)")
		maxRingStreams = fs.Int("max-ring-streams", 0,
			"streams per /v1/rings session (0 = default 4096)")
		requestLog = fs.Int("request-log", 0,
			"request digests retained for /debug/requests (0 = default 4096)")
		slowMs = fs.Float64("slow-ms", 0,
			"latency above which a request counts as slow in ringschedd_slo_requests_total and a bare /debug/requests?slow (0 = default 1000)")
	)
	var obs cli.Obs
	obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, logger, err := obs.Setup(ctx, errw)
	if err != nil {
		return err
	}
	defer obs.Close()

	chaos, err := resilience.ParseChaos(*chaosSpec)
	if err != nil {
		return err
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if len(peerList) > 0 && *advertise == "" {
		return errors.New("ringschedd: -peers requires -advertise (this process's own cluster address)")
	}
	if chaos.Enabled() {
		logger.LogAttrs(ctx, slog.LevelWarn, "chaos injection enabled",
			slog.String("spec", chaos.Spec()))
	}

	srv := service.New(service.Config{
		CacheBytes:      *cacheBytes,
		Workers:         *workers,
		JobTimeout:      *jobTimeout,
		Logger:          logger,
		TraceSpans:      *spans,
		TraceSink:       obs.Sink(),
		QueueDepth:      *queueDepth,
		ClientRPS:       *clientRPS,
		ClientBurst:     *clientBurst,
		MaxClients:      *maxClients,
		Chaos:           chaos,
		SSEKeepAlive:    *sseKeepAlive,
		Advertise:       *advertise,
		Peers:           peerList,
		PeerFillTimeout: *peerFillTimeout,
		PeerVNodes:      *peerVNodes,
		MaxRings:        *maxRings,
		MaxRingStreams:  *maxRingStreams,
		RequestLog:      *requestLog,
		SlowThreshold:   time.Duration(*slowMs * float64(time.Millisecond)),
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.LogAttrs(ctx, slog.LevelInfo, "listening",
		slog.String("addr", ln.Addr().String()),
		slog.Int("workers", *workers),
		slog.Int64("cacheBytes", *cacheBytes))

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop advertising health, reject new API work,
	// let in-flight requests finish within the drain budget, then cancel
	// whatever is left (long SSE streams included) and force-close.
	logger.LogAttrs(ctx, slog.LevelInfo, "draining",
		slog.Duration("budget", *drain),
		slog.Int64("inFlight", srv.InFlight()))
	srv.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := hs.Shutdown(drainCtx)
	srv.Close()
	if shutdownErr != nil {
		hs.Close()
		if !errors.Is(shutdownErr, context.DeadlineExceeded) {
			return shutdownErr
		}
		logger.LogAttrs(ctx, slog.LevelWarn, "drain budget exceeded, forced close")
	}
	logger.LogAttrs(ctx, slog.LevelInfo, "stopped")
	return nil
}
