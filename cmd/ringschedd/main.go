// Command ringschedd serves schedulability analysis over HTTP: the
// Theorem 4.1/5.1 verdicts (/v1/analyze), Figure 1-style breakdown sweeps
// with optional server-sent-event progress (/v1/sweep), the reproduction
// experiments (/v1/experiments), plus /healthz and Prometheus-text
// /metrics.
//
// Repeated and concurrent identical requests are served from a sharded
// LRU result cache and a coalescing worker pool: the same question is
// computed once, however many clients ask. SIGINT/SIGTERM drains
// gracefully — new requests get 503 while in-flight work finishes.
//
// Usage:
//
//	ringschedd                                # serve on :8080
//	ringschedd -addr 127.0.0.1:9000 -workers 8 -cache-bytes 33554432
//	curl -s localhost:8080/healthz
//	curl -s -XPOST -d '{"bandwidthMbps":100,"streams":[{"periodMs":10,"lengthBits":4096}]}' \
//	    localhost:8080/v1/analyze
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"ringsched/internal/cli"
	"ringsched/internal/service"
)

func main() {
	cli.Main("ringschedd", run)
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ringschedd", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		cacheBytes = fs.Int64("cache-bytes", 64<<20, "result cache byte budget")
		workers    = fs.Int("workers", 0, "concurrent computations (0 = all cores)")
		jobTimeout = fs.Duration("job-timeout", 5*time.Minute, "per-computation deadline (negative = none)")
		drain      = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain budget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := service.New(service.Config{
		CacheBytes: *cacheBytes,
		Workers:    *workers,
		JobTimeout: *jobTimeout,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(errw, "ringschedd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop advertising health, reject new API work,
	// let in-flight requests finish within the drain budget, then cancel
	// whatever is left (long SSE streams included) and force-close.
	fmt.Fprintf(errw, "ringschedd: draining (budget %v)\n", *drain)
	srv.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := hs.Shutdown(drainCtx)
	srv.Close()
	if shutdownErr != nil {
		hs.Close()
		if !errors.Is(shutdownErr, context.DeadlineExceeded) {
			return shutdownErr
		}
		fmt.Fprintln(errw, "ringschedd: drain budget exceeded, forced close")
	}
	fmt.Fprintln(errw, "ringschedd: stopped")
	return nil
}
