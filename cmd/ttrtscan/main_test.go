package main

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

func TestEqualPeriodScan(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-bw", "100", "-period", "50ms", "-n", "20", "-grid", "6"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"equal-period scan", "empirical best", "√(θP) rule", "breakdown utilization vs TTRT"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestGeneralComparison(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-bw", "100", "-n", "10", "-grid", "4", "-general", "-samples", "5"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "sqrt(theta*Pmin)") || !strings.Contains(got, "Pmin/2") {
		t.Errorf("rule comparison missing:\n%s", got)
	}
}

func TestNoTTRTRange(t *testing.T) {
	// A period so short that 2θ exceeds P/2 leaves no scan range.
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-bw", "1", "-period", "1ms", "-n", "100"}, &out, io.Discard); err == nil {
		t.Error("impossible TTRT range accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-nope"}, &out, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
}
