// Command ttrtscan explores the sensitivity of the timed token protocol's
// breakdown utilization to the TTRT value, supporting the paper's claim
// that TTRT ≈ √(θ·P) maximizes the breakdown utilization for equal-period
// sets and that the √(θ·Pmin) bidding rule is a good general heuristic.
//
// Usage:
//
//	ttrtscan -bw 100 -period 100ms -n 100
//	ttrtscan -bw 100 -general -samples 200
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"time"

	"ringsched"
	"ringsched/internal/breakdown"
	"ringsched/internal/cli"
	"ringsched/internal/core"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/textplot"
	"ringsched/internal/trace"
)

func main() {
	cli.Main("ttrtscan", run)
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ttrtscan", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		bwMbps  = fs.Float64("bw", 100, "network bandwidth in Mbps")
		period  = fs.Duration("period", 100*time.Millisecond, "common period for the equal-period scan")
		streams = fs.Int("n", 100, "number of streams/stations")
		grid    = fs.Int("grid", 30, "number of TTRT grid points")
		general = fs.Bool("general", false, "also compare TTRT rules on the paper's random workload")
		samples = fs.Int("samples", 100, "Monte Carlo samples for -general")
		seed    = fs.Int64("seed", 1993, "random seed for -general")
		timeout = fs.Duration("timeout", 0, "abort after this duration (0 = none)")
		workers = fs.Int("workers", 0, "parallel worker budget for the -general Monte Carlo pool (0 = all cores)")
		quiet   = fs.Bool("quiet", false, "suppress the live progress meter on stderr")
	)
	var obsf cli.Obs
	obsf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	ctx, logger, err := obsf.Setup(ctx, errw)
	if err != nil {
		return err
	}
	defer obsf.Close()
	ctx, sp := trace.Start(ctx, "cli.ttrtscan")
	defer sp.End()

	bw := ringsched.Mbps(*bwMbps)
	p := period.Seconds()

	probe := core.NewTTP(bw)
	probe.Net = probe.Net.WithStations(*streams)
	theta := probe.Overhead()
	sqrtRule := math.Sqrt(theta * p)
	sp.SetAttr("grid", *grid)
	sp.SetAttr("thetaSec", theta)
	logger.LogAttrs(ctx, slog.LevelDebug, "scan configured",
		slog.Int("grid", *grid),
		slog.Float64("thetaSec", theta),
		slog.Float64("sqrtRuleSec", sqrtRule))

	fmt.Fprintf(out, "equal-period scan: n=%d, P=%v, bw=%g Mbps, θ=%.4g ms, √(θP)=%.4g ms\n\n",
		*streams, *period, *bwMbps, theta*1e3, sqrtRule*1e3)
	fmt.Fprintf(out, "%12s %14s\n", "TTRT (ms)", "breakdown U")

	lo, hi := 2*theta, p/2
	if lo >= hi {
		return fmt.Errorf("no TTRT range: θ=%.4gms leaves nothing below P/2=%.4gms", theta*1e3, p/2*1e3)
	}
	var xs, ys []float64
	bestU, bestTTRT := -1.0, 0.0
	for i := 0; i <= *grid; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ttrt := lo * math.Pow(hi/lo, float64(i)/float64(*grid))
		u, err := equalPeriodBreakdown(*streams, p, ttrt, bw)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%12.4f %14.4f\n", ttrt*1e3, u)
		xs = append(xs, ttrt*1e3)
		ys = append(ys, u)
		if u > bestU {
			bestU, bestTTRT = u, ttrt
		}
	}
	uSqrt, err := equalPeriodBreakdown(*streams, p, sqrtRule, bw)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nempirical best: U=%.4f at TTRT=%.4g ms\n", bestU, bestTTRT*1e3)
	fmt.Fprintf(out, "√(θP) rule:     U=%.4f at TTRT=%.4g ms (%.1f%% of best)\n",
		uSqrt, sqrtRule*1e3, 100*uSqrt/bestU)

	plot := textplot.Plot{
		Title: "breakdown utilization vs TTRT (equal periods)", LogX: true,
		XLabel: "TTRT (ms, log)", YLabel: "breakdown U", Height: 14,
	}
	plot.Add(textplot.Series{Name: "breakdown U", X: xs, Y: ys})
	rendered, err := plot.Render()
	if err != nil {
		return err
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, rendered)

	if *general {
		fmt.Fprintln(out, "\nTTRT rules on the paper's random workload:")
		est := breakdown.Estimator{
			Generator: message.Generator{Streams: *streams, MeanPeriod: 100e-3, PeriodRatio: 10},
			Samples:   *samples,
			Seed:      *seed,
			Workers:   *workers,
		}
		var meter *progress.Meter
		if !*quiet {
			meter = progress.NewMeter(errw, int64(*samples)*2)
			est.Progress = meter
		}
		for _, rule := range []struct {
			name string
			rule ringsched.TTRTRule
		}{
			{"sqrt(theta*Pmin)", ringsched.TTRTSqrtHeuristic},
			{"Pmin/2", ringsched.TTRTHalfMinPeriod},
		} {
			t := core.NewTTP(bw)
			t.Net = t.Net.WithStations(*streams)
			t.Rule = rule.rule
			e, err := est.EstimateContext(ctx, t, bw)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  %-18s avg breakdown U = %s\n", rule.name, e)
		}
		if meter != nil {
			meter.Close()
		}
	}
	return nil
}

// equalPeriodBreakdown saturates an equal-period set under a fixed TTRT.
func equalPeriodBreakdown(n int, period, ttrt, bw float64) (float64, error) {
	set := make(ringsched.MessageSet, n)
	for i := range set {
		set[i] = ringsched.Stream{Period: period, LengthBits: 1}
	}
	t := core.NewTTP(bw)
	t.Net = t.Net.WithStations(n)
	t.Rule = ringsched.TTRTFixed
	t.FixedTTRT = ttrt
	sat, err := ringsched.Saturate(set, t, bw, ringsched.SaturateOptions{})
	if err != nil {
		return 0, err
	}
	if !sat.Feasible {
		return 0, nil
	}
	return sat.Utilization, nil
}
