// Command benchreport turns `go test -bench` output into the canonical
// benchmark report (BENCH_PR4.json) and gates performance regressions.
//
// Report mode — parse a benchmark run and emit JSON:
//
//	go test -run '^$' -bench . -benchmem ./... | benchreport -out BENCH_PR4.json
//
// Compare mode — gate a fresh run against a baseline (either a benchreport
// JSON file or raw `go test -bench` text; the format is auto-detected):
//
//	benchreport -in head.txt -baseline BENCH_PR4.json -ns-tol -1
//	benchreport -in head.txt -baseline base.txt -ns-tol 0.20
//
// The gate fails (exit 1) on any allocs/op increase, and — when ns-tol is
// non-negative — on any ns/op increase beyond the tolerance or throughput
// metric (…/s) decrease beyond it. Wall-clock comparisons are only
// meaningful between runs on the same machine (e.g. head vs merge-base in
// one CI job); across machines, compare with -ns-tol -1 so only the
// machine-independent allocation counts gate.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"strings"

	"ringsched/internal/cli"
	"ringsched/internal/trace"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Pkg         string             `json:"pkg"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func (b Benchmark) key() string { return b.Pkg + ":" + b.Name }

// Report is the canonical JSON document.
type Report struct {
	Schema     string      `json:"schema"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

const schema = "ringsched/bench/v1"

func main() {
	var (
		in       = flag.String("in", "-", "benchmark text to parse ('-' = stdin)")
		out      = flag.String("out", "", "write the JSON report here (default stdout; ignored with -baseline)")
		baseline = flag.String("baseline", "", "compare against this baseline (JSON report or raw bench text) instead of reporting")
		nsTol    = flag.Float64("ns-tol", 0.20, "relative ns/op (and …/s throughput) tolerance; negative disables wall-clock gating")
	)
	var obsf cli.Obs
	obsf.Register(flag.CommandLine)
	flag.Parse()

	ctx, logger, err := obsf.Setup(context.Background(), os.Stderr)
	if err != nil {
		fatal(err)
	}
	defer obsf.Close()
	ctx, sp := trace.Start(ctx, "cli.benchreport")
	defer sp.End()

	cur, err := load(*in)
	if err != nil {
		fatal(err)
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results found in %s", *in))
	}
	sp.SetAttr("benchmarks", len(cur.Benchmarks))
	logger.LogAttrs(ctx, slog.LevelDebug, "parsed",
		slog.String("in", *in),
		slog.Int("benchmarks", len(cur.Benchmarks)))

	if *baseline != "" {
		base, err := load(*baseline)
		if err != nil {
			fatal(err)
		}
		failures := compare(base, cur, *nsTol)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		sp.SetAttr("failures", len(failures))
		if len(failures) > 0 {
			sp.End()
			obsf.Close()
			os.Exit(1)
		}
		fmt.Printf("benchreport: %d benchmarks within budget (ns-tol %.0f%%, allocs strict)\n",
			len(cur.Benchmarks), *nsTol*100)
		return
	}

	blob, err := json.MarshalIndent(cur, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(2)
}

// load reads a report from path, accepting either benchreport JSON or raw
// `go test -bench` output.
func load(path string) (Report, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return Report{}, err
	}
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '{' {
		var r Report
		if err := json.Unmarshal(trimmed, &r); err != nil {
			return Report{}, fmt.Errorf("%s: %w", path, err)
		}
		return r, nil
	}
	return parseBench(data)
}

// parseBench parses `go test -bench` text. Repeated results for one
// benchmark (-count > 1) are folded: minimum ns/op and bytes/op (noise
// reduction), maximum allocs/op (conservative gate), maximum throughput
// metrics.
func parseBench(data []byte) (Report, error) {
	rep := Report{Schema: schema}
	index := map[string]int{}
	pkg := ""
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || len(f)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Pkg: pkg, Name: trimProcs(f[0]), Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return Report{}, fmt.Errorf("bad value %q in %q", f[i], line)
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = ptr(v)
			case "allocs/op":
				b.AllocsPerOp = ptr(v)
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		if j, ok := index[b.key()]; ok {
			fold(&rep.Benchmarks[j], b)
		} else {
			index[b.key()] = len(rep.Benchmarks)
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return Report{}, err
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].key() < rep.Benchmarks[j].key()
	})
	return rep, nil
}

// trimProcs strips the -GOMAXPROCS suffix go test appends to benchmark
// names, so runs at different -cpu settings still key identically.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func ptr(v float64) *float64 { return &v }

func fold(dst *Benchmark, b Benchmark) {
	dst.Iterations += b.Iterations
	if b.NsPerOp < dst.NsPerOp {
		dst.NsPerOp = b.NsPerOp
	}
	dst.BytesPerOp = foldPtr(dst.BytesPerOp, b.BytesPerOp, false)
	dst.AllocsPerOp = foldPtr(dst.AllocsPerOp, b.AllocsPerOp, true)
	for k, v := range b.Metrics {
		if old, ok := dst.Metrics[k]; !ok || v > old {
			if dst.Metrics == nil {
				dst.Metrics = map[string]float64{}
			}
			dst.Metrics[k] = v
		}
	}
}

func foldPtr(a, b *float64, max bool) *float64 {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case max == (*b > *a):
		return b
	default:
		return a
	}
}

// compare gates cur against base and returns one message per violation.
func compare(base, cur Report, nsTol float64) []string {
	curBy := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curBy[b.key()] = b
	}
	var failures []string
	for _, b := range base.Benchmarks {
		c, ok := curBy[b.key()]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchreport: warning: %s missing from current run\n", b.key())
			continue
		}
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil && *c.AllocsPerOp > *b.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %v > baseline %v",
				b.key(), *c.AllocsPerOp, *b.AllocsPerOp))
		}
		if nsTol < 0 {
			continue
		}
		if c.NsPerOp > b.NsPerOp*(1+nsTol) {
			failures = append(failures, fmt.Sprintf("%s: ns/op %.4g > baseline %.4g (+%.1f%%, tol %.0f%%)",
				b.key(), c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), nsTol*100))
		}
		for k, bv := range b.Metrics {
			cv, ok := c.Metrics[k]
			if !ok || !strings.HasSuffix(k, "/s") || bv <= 0 {
				continue
			}
			if cv < bv*(1-nsTol) {
				failures = append(failures, fmt.Sprintf("%s: %s %.4g < baseline %.4g (-%.1f%%, tol %.0f%%)",
					b.key(), k, cv, bv, 100*(1-cv/bv), nsTol*100))
			}
		}
	}
	return failures
}
