// Command breakdown regenerates Figure 1 of the paper: the average
// breakdown utilization of the three protocols (modified 802.5, standard
// IEEE 802.5, FDDI) as network bandwidth sweeps from 1 Mbps to 1 Gbps,
// printed as a table and an ASCII plot.
//
// Usage:
//
//	breakdown                         # full Figure 1
//	breakdown -bw 4,10,100            # specific bandwidths (Mbps)
//	breakdown -samples 400 -seed 7    # tighter confidence intervals
//	breakdown -n 50 -mean-period 50ms -period-ratio 4
//	breakdown -workers 8 -timeout 2m  # parallel sweep with a deadline
//	breakdown -trace-out spans.jsonl  # export per-point estimator spans
//
// A live progress line (percent, ETA, current sweep point) streams to
// stderr; Ctrl-C aborts promptly. Results are identical at any -workers
// value.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"time"

	"ringsched"
	"ringsched/internal/breakdown"
	"ringsched/internal/cli"
	"ringsched/internal/core"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/textplot"
	"ringsched/internal/trace"
)

func main() {
	cli.Main("breakdown", run)
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("breakdown", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		samples     = fs.Int("samples", 100, "Monte Carlo samples per point")
		seed        = fs.Int64("seed", 1993, "random seed")
		points      = fs.Int("points", 3, "sweep points per bandwidth decade")
		bwList      = fs.String("bw", "", "comma-separated bandwidths in Mbps (overrides the sweep grid)")
		streams     = fs.Int("n", 100, "number of stations/streams")
		meanPeriod  = fs.Duration("mean-period", 100*time.Millisecond, "mean message period")
		periodRatio = fs.Float64("period-ratio", 10, "max/min period ratio")
		noPlot      = fs.Bool("no-plot", false, "suppress the ASCII plot")
		distr       = fs.Bool("distribution", false, "also print the per-set spread (P10/median/P90)")
		jsonOut     = fs.Bool("json", false, "emit the ringschedd /v1/sweep response JSON instead of the table and plot")
		timeout     = fs.Duration("timeout", 0, "abort after this duration (0 = none)")
		workers     = fs.Int("workers", 0, "parallel worker budget across sweep points and samples (0 = all cores)")
		quiet       = fs.Bool("quiet", false, "suppress the live progress meter on stderr")
	)
	var obsf cli.Obs
	obsf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	ctx, logger, err := obsf.Setup(ctx, errw)
	if err != nil {
		return err
	}
	defer obsf.Close()
	ctx, sp := trace.Start(ctx, "cli.breakdown")
	defer sp.End()

	var bandwidths []float64
	if *bwList != "" {
		for _, part := range strings.Split(*bwList, ",") {
			mbps, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return fmt.Errorf("parse -bw %q: %w", part, err)
			}
			bandwidths = append(bandwidths, ringsched.Mbps(mbps))
		}
	} else {
		bandwidths = breakdown.PaperBandwidths(*points)
	}
	sp.SetAttr("samples", *samples)
	sp.SetAttr("bandwidths", len(bandwidths))
	logger.LogAttrs(ctx, slog.LevelDebug, "sweep configured",
		slog.Int("bandwidths", len(bandwidths)),
		slog.Int("samples", *samples),
		slog.Int("streams", *streams))

	if *jsonOut {
		// The request goes through the same canonicalization, estimation
		// and encoding as the ringschedd server, so this output is
		// byte-identical to a /v1/sweep response body for the same sweep.
		req := ringsched.SweepRequest{
			PointsPerDecade: *points,
			Streams:         *streams,
			MeanPeriodMs:    meanPeriod.Seconds() * 1e3,
			PeriodRatio:     *periodRatio,
			Samples:         *samples,
			Seed:            *seed,
		}
		for _, bw := range bandwidths {
			req.BandwidthsMbps = append(req.BandwidthsMbps, bw/1e6)
		}
		var obs ringsched.Progress
		if !*quiet {
			meter := progress.NewMeter(errw, int64(*samples)*int64(len(bandwidths))*3)
			defer meter.Close()
			obs = meter
		}
		resp, err := ringsched.RunSweep(ctx, req, *workers, obs)
		if err != nil {
			return err
		}
		body, err := ringsched.EncodeResponse(resp)
		if err != nil {
			return err
		}
		_, err = out.Write(body)
		return err
	}

	est := ringsched.Estimator{
		Generator: message.Generator{
			Streams:     *streams,
			MeanPeriod:  meanPeriod.Seconds(),
			PeriodRatio: *periodRatio,
		},
		Samples: *samples,
		Seed:    *seed,
		Workers: *workers,
	}

	// Three protocol series, each estimating every bandwidth point.
	var meter *progress.Meter
	if !*quiet {
		meter = progress.NewMeter(errw, int64(*samples)*int64(len(bandwidths))*3)
		defer meter.Close()
		est.Progress = meter
	}

	protocols := []struct {
		name    string
		factory breakdown.AnalyzerFactory
	}{
		{"Modified 802.5", func(bw float64) core.Analyzer {
			p := core.NewModifiedPDP(bw)
			p.Net = p.Net.WithStations(*streams)
			return p
		}},
		{"IEEE 802.5", func(bw float64) core.Analyzer {
			p := core.NewStandardPDP(bw)
			p.Net = p.Net.WithStations(*streams)
			return p
		}},
		{"FDDI", func(bw float64) core.Analyzer {
			t := core.NewTTP(bw)
			t.Net = t.Net.WithStations(*streams)
			return t
		}},
	}

	var series []breakdown.Series
	for _, p := range protocols {
		s, err := est.SweepContext(ctx, p.name, p.factory, bandwidths)
		if err != nil {
			return err
		}
		series = append(series, s)
	}
	if meter != nil {
		meter.Close()
	}

	fmt.Fprintf(out, "Average breakdown utilization (n=%d, mean period %v, ratio %g, %d samples/point)\n\n",
		*streams, *meanPeriod, *periodRatio, *samples)
	table, err := breakdown.FormatTable(series)
	if err != nil {
		return err
	}
	fmt.Fprint(out, table)
	if *distr {
		spread, err := breakdown.FormatDistributionTable(series)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "\nper-set breakdown spread:")
		fmt.Fprint(out, spread)
	}

	if !*noPlot && len(bandwidths) > 1 {
		plot := textplot.Plot{
			Title:  "Figure 1: average breakdown utilization vs bandwidth",
			XLabel: "bandwidth (bps, log)",
			YLabel: "avg breakdown utilization",
			LogX:   true,
			YMax:   1,
		}
		for _, s := range series {
			ts := textplot.Series{Name: s.Name}
			for _, p := range s.Points {
				ts.X = append(ts.X, p.BandwidthBPS)
				ts.Y = append(ts.Y, p.Estimate.Mean)
			}
			plot.Add(ts)
		}
		rendered, err := plot.Render()
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, rendered)
	}
	return nil
}
