package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ringsched/internal/service"
)

// TestJSONSweepMatchesServerBody is the satellite acceptance check: the
// -json CLI mode and the ringschedd /v1/sweep endpoint answer the same
// sweep with byte-identical bodies.
func TestJSONSweepMatchesServerBody(t *testing.T) {
	args := []string{"-bw", "10,100", "-n", "5", "-samples", "4", "-seed", "7", "-quiet", "-json"}
	var cliOut bytes.Buffer
	if err := run(context.Background(), args, &cliOut, io.Discard); err != nil {
		t.Fatal(err)
	}

	srv := service.New(service.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqBody := `{"bandwidthsMbps": [100, 10], "streams": 5, "samples": 4, "seed": 7}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	serverBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server: %d %s", resp.StatusCode, serverBody)
	}

	if !bytes.Equal(cliOut.Bytes(), serverBody) {
		t.Errorf("CLI -json and server sweep bodies differ:\n--- CLI ---\n%s\n--- server ---\n%s",
			cliOut.Bytes(), serverBody)
	}

	var parsed service.SweepResponse
	if err := json.Unmarshal(cliOut.Bytes(), &parsed); err != nil {
		t.Fatalf("-json output is not a SweepResponse: %v", err)
	}
	if parsed.CacheKey == "" || len(parsed.Series) != 3 {
		t.Errorf("unexpected sweep response: key=%q series=%d", parsed.CacheKey, len(parsed.Series))
	}
	for _, s := range parsed.Series {
		if len(s.Points) != 2 {
			t.Errorf("series %s has %d points, want 2", s.Protocol, len(s.Points))
		}
	}
}

func TestJSONSweepWithProgressMeter(t *testing.T) {
	// The meter writes to errw; the JSON body on out must stay clean.
	var out, errw bytes.Buffer
	args := []string{"-bw", "16", "-n", "4", "-samples", "3", "-seed", "2", "-json"}
	if err := run(context.Background(), args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	var parsed service.SweepResponse
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("output polluted by progress meter: %v\n%s", err, out.String())
	}
}
