package main

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

func TestExplicitBandwidths(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-bw", "4,100", "-samples", "5", "-n", "10", "-no-plot"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Modified 802.5", "IEEE 802.5", "FDDI", "4.000", "100.000"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "Figure 1:") {
		t.Error("-no-plot should suppress the plot")
	}
}

func TestPlotRendered(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-bw", "4,40,400", "-samples", "3", "-n", "8"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 1: average breakdown utilization") {
		t.Errorf("plot missing:\n%s", out.String())
	}
}

func TestDistributionOutput(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-bw", "16", "-samples", "5", "-n", "8", "-no-plot", "-distribution"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "per-set breakdown spread") ||
		!strings.Contains(out.String(), "mean/p10/p50/p90") {
		t.Errorf("distribution table missing:\n%s", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-bw", "abc"}, &out, io.Discard); err == nil {
		t.Error("unparseable bandwidth accepted")
	}
	if err := run(context.Background(), []string{"-wat"}, &out, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestSinglePointSkipsPlot(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-bw", "16", "-samples", "3", "-n", "6"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Figure 1: average") {
		t.Error("single-point run should not plot")
	}
}
