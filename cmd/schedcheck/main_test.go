package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPrintExample(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-print-example"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"attitude-control", "periodMs", "lengthBits"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("example output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGeneratedSetReport(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-bw", "16", "-n", "8", "-utilization", "0.3", "-verbose"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Modified 802.5", "IEEE 802.5", "FDDI", "schedulable=", "TTRT="} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	// Verbose mode lists all 8 streams per protocol.
	if strings.Count(got, "S1 ") == 0 {
		t.Error("verbose stream rows missing")
	}
}

func TestJSONRoundTripThroughCLI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "set.json")

	var example bytes.Buffer
	if err := run(context.Background(), []string{"-print-example"}, &example, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, example.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run(context.Background(), []string{"-set", path, "-bw", "100"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "message set: 3 streams") {
		t.Errorf("unexpected report:\n%s", out.String())
	}
}

func TestPresetWorkload(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-preset", "avionics", "-bw", "4"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "message set: 8 streams") {
		t.Errorf("preset report:\n%s", out.String())
	}
	if err := run(context.Background(), []string{"-preset", "bogus"}, &out, io.Discard); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-set", "/does/not/exist.json"}, &out, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(context.Background(), []string{"-bogus-flag"}, &out, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-utilization", "0"}, &out, io.Discard); err == nil {
		t.Error("zero utilization accepted")
	}
}

func TestNameHelper(t *testing.T) {
	if name("", 2) != "S3" {
		t.Error("empty name fallback")
	}
	if name("gyro", 2) != "gyro" {
		t.Error("explicit name dropped")
	}
}
