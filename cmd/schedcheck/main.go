// Command schedcheck tests whether a synchronous message set is guaranteed
// under each of the three protocols — modified 802.5, standard IEEE 802.5
// (Theorem 4.1) and FDDI with the local allocation scheme (Theorem 5.1) —
// and prints the detailed per-stream analysis.
//
// The message set comes from a JSON file (see -print-example) or, without
// -set, from the paper's random workload generator.
//
// Usage:
//
//	schedcheck -print-example > set.json
//	schedcheck -set set.json -bw 100
//	schedcheck -bw 16 -n 40 -seed 7 -verbose
//	schedcheck -bw 100 -json -trace-out spans.jsonl -log-level debug
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"strings"

	"ringsched"
	"ringsched/internal/cli"
	"ringsched/internal/core"
	"ringsched/internal/message"
	"ringsched/internal/trace"
)

func main() {
	cli.Main("schedcheck", run)
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("schedcheck", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		topoSpec     = fs.String("topology", "", "bridged topology spec (ring:…+bridge:…+flow:…); analyze end-to-end bounds instead of a single-ring set")
		setPath      = fs.String("set", "", "JSON file with the message set (default: random paper workload)")
		preset       = fs.String("preset", "", "built-in workload preset (avionics, process-control, space-station, multimedia)")
		bwMbps       = fs.Float64("bw", 100, "network bandwidth in Mbps")
		streams      = fs.Int("n", 100, "streams when generating a random set")
		seed         = fs.Int64("seed", 1, "seed for the random set")
		utilization  = fs.Float64("utilization", 0.3, "target utilization when generating a random set")
		verbose      = fs.Bool("verbose", false, "print per-stream detail")
		printExample = fs.Bool("print-example", false, "print an example JSON message set and exit")
		faultSpec    = fs.String("fault-model", "", "fault model spec for a side-by-side degraded-mode verdict, e.g. loss:p=1e-3+gilbert:burst=16")
		scenario     = fs.String("scenario", "", "named fault scenario: clean, noisy-channel, lossy-token, flaky-stations, degraded")
		jsonOut      = fs.Bool("json", false, "emit the ringschedd /v1/analyze response JSON instead of the text report")
		timeout      = fs.Duration("timeout", 0, "abort after this duration (0 = none)")
		workers      = fs.Int("workers", 0, "cap OS parallelism for the run (0 = all cores)")
	)
	var obsf cli.Obs
	obsf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	cli.ApplyWorkers(*workers)
	ctx, logger, err := obsf.Setup(ctx, errw)
	if err != nil {
		return err
	}
	defer obsf.Close()
	ctx, sp := trace.Start(ctx, "cli.schedcheck")
	defer sp.End()

	if *printExample {
		example := ringsched.MessageSet{
			{Name: "attitude-control", Period: 10e-3, LengthBits: 4096},
			{Name: "telemetry", Period: 50e-3, LengthBits: 65536},
			{Name: "video", Period: 100e-3, LengthBits: 1 << 20},
		}
		return example.WriteJSON(out)
	}

	if *topoSpec != "" {
		return runTopology(ctx, out, *topoSpec, *verbose, *jsonOut)
	}

	bw := ringsched.Mbps(*bwMbps)
	set, err := loadSet(*setPath, *preset, *streams, *seed, *utilization, bw)
	if err != nil {
		return err
	}
	fm, err := loadFaultModel(*faultSpec, *scenario)
	if err != nil {
		return err
	}
	sp.SetAttr("streams", len(set))
	sp.SetAttr("bandwidthMbps", *bwMbps)
	logger.LogAttrs(ctx, slog.LevelDebug, "workload loaded",
		slog.Int("streams", len(set)),
		slog.Float64("bandwidthMbps", *bwMbps),
		slog.Float64("utilization", set.Utilization(bw)))

	if *jsonOut {
		// The request goes through the same canonicalization, analysis and
		// encoding as the ringschedd server, so this output is
		// byte-identical to a /v1/analyze response body for the same set.
		req := ringsched.AnalyzeRequest{
			BandwidthMbps: *bwMbps,
			Streams:       wireStreams(set),
			Detail:        *verbose,
		}
		if fm != nil {
			req.FaultModel = fm.Spec()
		}
		resp, err := ringsched.Analyze(ctx, req)
		if err != nil {
			return err
		}
		body, err := ringsched.EncodeResponse(resp)
		if err != nil {
			return err
		}
		_, err = out.Write(body)
		return err
	}

	fmt.Fprintf(out, "message set: %d streams, payload utilization %.4f at %.3g Mbps\n",
		len(set), set.Utilization(bw), *bwMbps)
	if fm != nil {
		fmt.Fprintf(out, "fault model: %s\n", fm.Spec())
	}
	fmt.Fprintln(out)

	// PDP variants.
	for _, variant := range []ringsched.PDPVariant{ringsched.Modified8025, ringsched.Standard8025} {
		if err := ctx.Err(); err != nil {
			return err
		}
		pdp := ringsched.NewStandardPDP(bw)
		pdp.Variant = variant
		if len(set) > pdp.Net.Stations {
			pdp.Net = pdp.Net.WithStations(len(set))
		}
		rep, err := pdp.Report(set)
		if err != nil {
			return err
		}
		printPDP(out, rep, *verbose)
		if fm != nil {
			budget := pdp.FaultBudgetFor(fm, set)
			deg, err := pdp.FaultReport(set, budget)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "  degraded:      schedulable=%-5v  B'=%.3gus  A=%.4f  (Nloss=%.3g, R=%.3gus)\n\n",
				deg.Schedulable, deg.Blocking*1e6, budget.Availability,
				budget.Losses, budget.Recovery*1e6)
		}
	}

	// TTP.
	if err := ctx.Err(); err != nil {
		return err
	}
	ttp := ringsched.NewTTP(bw)
	if len(set) > ttp.Net.Stations {
		ttp.Net = ttp.Net.WithStations(len(set))
	}
	rep, err := ttp.Report(set)
	if err != nil {
		return err
	}
	printTTP(out, rep, *verbose)
	if fm != nil {
		budget := ttp.FaultBudgetFor(fm, set)
		deg, err := ttp.FaultReport(set, budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  degraded:      schedulable=%-5v  A=%.4f  Σh=%.4gms  cap=%.4gms\n\n",
			deg.Schedulable, deg.Availability, deg.TotalAllocation*1e3, deg.Capacity*1e3)
	}
	return nil
}

// runTopology answers -topology: the bridged ring-of-rings analysis with
// per-ring verdicts and end-to-end flow bounds. With -json the output is
// byte-identical to a /v1/topology/analyze response body.
func runTopology(ctx context.Context, out io.Writer, spec string, verbose, jsonOut bool) error {
	if jsonOut {
		resp, err := ringsched.AnalyzeTopologyRequest(ctx, ringsched.TopologyRequest{
			Topology: spec,
			Detail:   verbose,
		})
		if err != nil {
			return err
		}
		body, err := ringsched.EncodeResponse(resp)
		if err != nil {
			return err
		}
		_, err = out.Write(body)
		return err
	}

	topo, err := ringsched.ParseTopology(spec)
	if err != nil {
		return err
	}
	rep, err := ringsched.AnalyzeTopology(topo)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "topology: %d rings, %d bridges, %d flows\n",
		len(topo.Nodes), len(topo.Bridges), len(rep.Flows))
	fmt.Fprintf(out, "verdict:  schedulable=%v  bounded=%v\n\n", rep.Schedulable, rep.Bounded)
	for _, r := range rep.Rings {
		fmt.Fprintf(out, "ring %-8s %-14s streams=%-3d schedulable=%-5v U=%.4f\n",
			r.Name, r.Protocol, len(r.Set), r.Schedulable, r.Utilization)
	}
	if len(rep.Bridges) > 0 {
		fmt.Fprintln(out)
		for _, b := range rep.Bridges {
			if !b.Stable {
				fmt.Fprintf(out, "bridge %s->%s: UNSTABLE (arrival %.4g Mbps >= rate %.4g Mbps)\n",
					b.From, b.To, b.ArrivalRateBPS/1e6, b.RateBPS/1e6)
				continue
			}
			fmt.Fprintf(out, "bridge %s->%s: flows=%d  burst=%.0fb  delay<=%.4fms  bufferOK=%v\n",
				b.From, b.To, b.Flows, b.BurstBits, b.DelayBound*1e3, b.BufferOK)
		}
	}
	fmt.Fprintln(out)
	for _, f := range rep.Flows {
		if !f.Bounded {
			fmt.Fprintf(out, "flow %-10s %-16s period=%.4gms  bound=unbounded  schedulable=false\n",
				f.Flow.Name, pathString(f.Path), f.Flow.Period*1e3)
			continue
		}
		fmt.Fprintf(out, "flow %-10s %-16s period=%.4gms  bound=%.4fms  schedulable=%v\n",
			f.Flow.Name, pathString(f.Path), f.Flow.Period*1e3, f.Bound*1e3, f.Schedulable)
		if verbose {
			fmt.Fprintf(out, "     ring delays (ms): %s   bridge delays (ms): %s\n",
				formatDelays(f.RingDelays), formatDelays(f.BridgeDelays))
		}
	}
	return nil
}

func pathString(path []string) string {
	return strings.Join(path, ">")
}

func formatDelays(ds []float64) string {
	if len(ds) == 0 {
		return "-"
	}
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = fmt.Sprintf("%.4f", d*1e3)
	}
	return strings.Join(parts, " ")
}

// loadFaultModel resolves the -fault-model / -scenario flags (mutually
// exclusive) into an injectable model, or nil when neither is set or the
// result is inactive.
func loadFaultModel(spec, scenario string) (*ringsched.FaultModel, error) {
	if spec != "" && scenario != "" {
		return nil, fmt.Errorf("-fault-model and -scenario are mutually exclusive")
	}
	var m ringsched.FaultModel
	switch {
	case spec != "":
		parsed, err := ringsched.ParseFaultModel(spec)
		if err != nil {
			return nil, err
		}
		m = parsed
	case scenario != "":
		sc, err := ringsched.FaultScenarioByName(scenario)
		if err != nil {
			return nil, err
		}
		m = sc.Model
	default:
		return nil, nil
	}
	if !m.Active() {
		return nil, nil
	}
	return &m, nil
}

func loadSet(path, preset string, streams int, seed int64, utilization, bw float64) (ringsched.MessageSet, error) {
	if preset != "" {
		p, err := ringsched.PresetByName(preset)
		if err != nil {
			return nil, err
		}
		return p.Set, nil
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return message.ReadJSON(f)
	}
	gen := ringsched.PaperGenerator()
	gen.Streams = streams
	set, err := gen.Draw(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return set.ScaleToUtilization(utilization, bw)
}

func printPDP(out io.Writer, rep core.PDPReport, verbose bool) {
	fmt.Fprintf(out, "%-16s schedulable=%-5v  U=%.4f  U'=%.4f  B=%.3gus  Θ=%.3gus  F=%.3gus\n",
		rep.Variant, rep.Schedulable, rep.Utilization, rep.AugmentedUtilization,
		rep.Blocking*1e6, rep.Theta*1e6, rep.FrameTime*1e6)
	if verbose {
		fmt.Fprintf(out, "  %4s %-18s %12s %8s %14s %14s %6s\n",
			"#", "name", "period(ms)", "frames", "C'(us)", "resp(us)", "ok")
		for i, s := range rep.Streams {
			fmt.Fprintf(out, "  %4d %-18s %12.3f %8d %14.2f %14.2f %6v\n",
				i+1, name(s.Stream.Name, i), s.Stream.Period*1e3, s.Frames,
				s.AugmentedLength*1e6, s.ResponseTime*1e6, s.Schedulable)
		}
	}
	fmt.Fprintln(out)
}

func printTTP(out io.Writer, rep core.TTPReport, verbose bool) {
	fmt.Fprintf(out, "%-16s schedulable=%-5v  U=%.4f  TTRT=%.4gms  θ=%.3gus  Σh=%.4gms  cap=%.4gms\n",
		"FDDI", rep.Schedulable, rep.Utilization, rep.TTRT*1e3,
		rep.Overhead*1e6, rep.TotalAllocation*1e3, rep.Capacity*1e3)
	if verbose {
		fmt.Fprintf(out, "  %4s %-18s %12s %6s %14s %14s %12s\n",
			"#", "name", "period(ms)", "q", "C'(us)", "h(us)", "wcr(ms)")
		for i, s := range rep.Streams {
			fmt.Fprintf(out, "  %4d %-18s %12.3f %6d %14.2f %14.2f %12.3f\n",
				i+1, name(s.Stream.Name, i), s.Stream.Period*1e3, s.Q,
				s.AugmentedLength*1e6, s.Allocation*1e6, s.WorstCaseResponse*1e3)
		}
	}
	fmt.Fprintln(out)
}

// wireStreams converts a message set to the service's wire form.
func wireStreams(set ringsched.MessageSet) []ringsched.ServiceStreamSpec {
	out := make([]ringsched.ServiceStreamSpec, len(set))
	for i, s := range set {
		out[i] = ringsched.ServiceStreamSpec{Name: s.Name, PeriodMs: s.Period * 1e3, LengthBits: s.LengthBits}
	}
	return out
}

func name(n string, i int) string {
	if n == "" {
		return fmt.Sprintf("S%d", i+1)
	}
	return n
}
