package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ringsched/internal/service"
)

// TestJSONOutputMatchesServerBody is the satellite acceptance check: the
// -json CLI mode and the ringschedd /v1/analyze endpoint answer the same
// question with byte-identical bodies.
func TestJSONOutputMatchesServerBody(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "set.json")
	var example bytes.Buffer
	if err := run(context.Background(), []string{"-print-example"}, &example, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, example.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}

	var cliOut bytes.Buffer
	if err := run(context.Background(), []string{"-set", path, "-bw", "100", "-json"}, &cliOut, io.Discard); err != nil {
		t.Fatal(err)
	}

	srv := service.New(service.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The same message set as the example file, spelled as a wire request
	// with the streams deliberately out of RM order.
	reqBody := `{"bandwidthMbps": 100, "streams": [
		{"name": "video", "periodMs": 100, "lengthBits": 1048576},
		{"name": "attitude-control", "periodMs": 10, "lengthBits": 4096},
		{"name": "telemetry", "periodMs": 50, "lengthBits": 65536}
	]}`
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	serverBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server: %d %s", resp.StatusCode, serverBody)
	}

	if !bytes.Equal(cliOut.Bytes(), serverBody) {
		t.Errorf("CLI -json and server bodies differ:\n--- CLI ---\n%s\n--- server ---\n%s",
			cliOut.Bytes(), serverBody)
	}
}

func TestJSONOutputWithScenarioMatchesServerBody(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "set.json")
	var example bytes.Buffer
	if err := run(context.Background(), []string{"-print-example"}, &example, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, example.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}

	var cliOut bytes.Buffer
	args := []string{"-set", path, "-bw", "16", "-scenario", "lossy-token", "-verbose", "-json"}
	if err := run(context.Background(), args, &cliOut, io.Discard); err != nil {
		t.Fatal(err)
	}

	srv := service.New(service.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqBody := `{"bandwidthMbps": 16, "scenario": "lossy-token", "detail": true, "streams": [
		{"name": "attitude-control", "periodMs": 10, "lengthBits": 4096},
		{"name": "telemetry", "periodMs": 50, "lengthBits": 65536},
		{"name": "video", "periodMs": 100, "lengthBits": 1048576}
	]}`
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	serverBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server: %d %s", resp.StatusCode, serverBody)
	}

	if !bytes.Equal(cliOut.Bytes(), serverBody) {
		t.Errorf("CLI -json (scenario) and server bodies differ:\n--- CLI ---\n%s\n--- server ---\n%s",
			cliOut.Bytes(), serverBody)
	}
	if !strings.Contains(cliOut.String(), `"degraded"`) {
		t.Error("-json with a fault scenario should include degraded verdicts")
	}
}

// TestTopologyJSONMatchesServerBody pins the same byte-identity contract
// for the bridged endpoint: schedcheck -topology -json and the ringschedd
// /v1/topology/analyze endpoint produce identical bodies.
func TestTopologyJSONMatchesServerBody(t *testing.T) {
	const spec = "ring:name=a,proto=8025mod,bw=16e6 + ring:name=b,proto=fddi,bw=100e6" +
		" + bridge:a=a,b=b,latency=100us" +
		" + flow:name=cross,src=a,dst=b,period=100ms,bits=4096" +
		" + flow:name=local,src=b,period=20ms,bits=1024"

	var cliOut bytes.Buffer
	if err := run(context.Background(), []string{"-topology", spec, "-json", "-verbose"},
		&cliOut, io.Discard); err != nil {
		t.Fatal(err)
	}

	srv := service.New(service.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqBody, err := json.Marshal(map[string]any{"topology": spec, "detail": true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/topology/analyze", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	serverBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server: %d %s", resp.StatusCode, serverBody)
	}
	if !bytes.Equal(cliOut.Bytes(), serverBody) {
		t.Errorf("CLI -topology -json and server bodies differ:\n--- CLI ---\n%s\n--- server ---\n%s",
			cliOut.Bytes(), serverBody)
	}
}
