package main

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"

	"ringsched/internal/service"
)

func startMember(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return ln.Addr().String()
}

func TestRingtopSnapshot(t *testing.T) {
	a, b := startMember(t), startMember(t)
	body := `{"bandwidthMbps":16,"streams":[{"name":"s","periodMs":10,"lengthBits":4096}]}`
	for _, addr := range []string{a, a, b} { // a: miss+hit, b: miss
		resp, err := http.Post("http://"+addr+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var out bytes.Buffer
	err := run(context.Background(),
		[]string{"-targets", a + "," + b, "-count", "1"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	frame := out.String()
	for _, want := range []string{"2 members", "MEMBER", "HIT%", a, b, "▁"} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	// Member a served a hit and a miss: 50% cache hit rate on its row.
	for _, line := range strings.Split(frame, "\n") {
		if strings.HasPrefix(line, a) {
			if !strings.Contains(line, "50.0") {
				t.Fatalf("member %s row should show 50%% hit rate: %q", a, line)
			}
		}
	}
}

func TestRingtopDownMember(t *testing.T) {
	a := startMember(t)
	var out bytes.Buffer
	err := run(context.Background(),
		[]string{"-targets", a + ",127.0.0.1:1", "-count", "1", "-timeout", "300ms"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "DOWN") {
		t.Fatalf("unreachable member should render as DOWN:\n%s", out.String())
	}
}

func TestRingtopRequiresTargets(t *testing.T) {
	err := run(context.Background(), nil, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-targets") {
		t.Fatalf("want -targets error, got %v", err)
	}
}
