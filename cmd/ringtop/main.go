// Command ringtop is a terminal dashboard for a ringschedd fleet: it
// polls each member's /metrics and /debug/requests and renders one RED
// row per member — request rate, error and slow percentages, cache /
// coalesce / peer-fill hit rates, resident rings, in-flight work — plus
// a latency sparkline built from the flight recorder's recent digests.
//
// Rates are deltas between consecutive scrapes; the first tick (and
// -count 1 runs) shows lifetime totals instead.
//
// Usage:
//
//	ringtop -targets localhost:8081,localhost:8082
//	ringtop -targets localhost:8081 -interval 1s
//	ringtop -targets localhost:8081 -count 1        # one snapshot, exit
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"ringsched/internal/cli"
	"ringsched/internal/promtext"
	"ringsched/internal/textplot"
)

func main() {
	cli.Main("ringtop", run)
}

// memberStats is one member's scrape, reduced to the dashboard's needs.
type memberStats struct {
	target string
	err    error

	requests  float64 // all finished requests (SLO classes summed)
	errors    float64 // class="error"
	slow      float64 // class="slow"
	hits      float64
	misses    float64
	coalesced float64
	peerFills float64
	rings     float64
	inFlight  float64

	latenciesMs []float64 // oldest-first, from /debug/requests
}

// scrape polls one member. Any failure marks the whole row.
func scrape(ctx context.Context, client *http.Client, target string) memberStats {
	st := memberStats{target: target}
	base := target
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	fams, err := fetchMetrics(ctx, client, base)
	if err != nil {
		st.err = err
		return st
	}
	byName := map[string]promtext.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	slo := byName["ringschedd_slo_requests_total"]
	st.requests = slo.Value(nil)
	st.errors = slo.Value(map[string]string{"class": "error"})
	st.slow = slo.Value(map[string]string{"class": "slow"})
	st.hits = byName["ringschedd_cache_hits_total"].Value(nil)
	st.misses = byName["ringschedd_cache_misses_total"].Value(nil)
	st.coalesced = byName["ringschedd_coalesced_total"].Value(nil)
	st.peerFills = byName["ringschedd_peer_fill_total"].Value(map[string]string{"outcome": "hit"})
	st.rings = byName["ringschedd_rings"].Value(nil)
	st.inFlight = byName["ringschedd_http_in_flight"].Value(nil)

	if lats, err := fetchLatencies(ctx, client, base); err == nil {
		st.latenciesMs = lats
	}
	return st
}

func fetchMetrics(ctx context.Context, client *http.Client, base string) ([]promtext.Family, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: %s", resp.Status)
	}
	return promtext.Parse(resp.Body)
}

// fetchLatencies reads the flight recorder's newest digests and returns
// their latencies oldest-first, ready for a left-to-right sparkline.
func fetchLatencies(ctx context.Context, client *http.Client, base string) ([]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/requests?limit=64", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/requests: %s", resp.Status)
	}
	var body struct {
		Requests []struct {
			LatencyMs float64 `json:"latencyMs"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	lats := make([]float64, len(body.Requests))
	for i, r := range body.Requests {
		lats[len(body.Requests)-1-i] = r.LatencyMs // newest-first → oldest-first
	}
	return lats, nil
}

// pct renders a share of a total as a percentage cell.
func pct(part, whole float64) string {
	if whole <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*part/whole)
}

// render writes one dashboard frame.
func render(w io.Writer, tick int, interval time.Duration, cur []memberStats, prev map[string]memberStats) {
	fmt.Fprintf(w, "ringtop — %d members, tick %d (interval %s)\n\n", len(cur), tick, interval)
	fmt.Fprintf(w, "%-24s %9s %8s %6s %6s %6s %6s %6s %6s %5s  %s\n",
		"MEMBER", "REQS", "RPS", "ERR%", "SLOW%", "HIT%", "COAL%", "PEER%", "RINGS", "INFL", "LATENCY")
	for _, st := range cur {
		if st.err != nil {
			fmt.Fprintf(w, "%-24s DOWN: %v\n", st.target, st.err)
			continue
		}
		rps := "-"
		if p, ok := prev[st.target]; ok && interval > 0 {
			rps = fmt.Sprintf("%.1f", (st.requests-p.requests)/interval.Seconds())
		}
		lookups := st.hits + st.misses
		spark := textplot.Spark(st.latenciesMs)
		lat := ""
		if n := len(st.latenciesMs); n > 0 {
			maxMs := st.latenciesMs[0]
			for _, v := range st.latenciesMs {
				if v > maxMs {
					maxMs = v
				}
			}
			lat = fmt.Sprintf("%s max=%.1fms", spark, maxMs)
		}
		fmt.Fprintf(w, "%-24s %9.0f %8s %6s %6s %6s %6s %6s %6.0f %5.0f  %s\n",
			st.target, st.requests, rps,
			pct(st.errors, st.requests), pct(st.slow, st.requests),
			pct(st.hits, lookups), pct(st.coalesced, lookups+st.coalesced),
			pct(st.peerFills, lookups), st.rings, st.inFlight, lat)
	}
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ringtop", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		targets  = fs.String("targets", "", "comma-separated ringschedd addresses (host:port,...)")
		interval = fs.Duration("interval", 2*time.Second, "poll interval")
		count    = fs.Int("count", 0, "ticks to render before exiting (0 = run until interrupted)")
		timeout  = fs.Duration("timeout", 2*time.Second, "per-scrape HTTP timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var members []string
	for _, tgt := range strings.Split(*targets, ",") {
		if tgt = strings.TrimSpace(tgt); tgt != "" {
			members = append(members, tgt)
		}
	}
	if len(members) == 0 {
		return fmt.Errorf("ringtop: -targets required (comma-separated host:port list)")
	}
	sort.Strings(members)
	client := &http.Client{Timeout: *timeout}

	prev := map[string]memberStats{}
	for tick := 1; ; tick++ {
		cur := make([]memberStats, len(members))
		for i, m := range members {
			cur[i] = scrape(ctx, client, m)
		}
		if tick > 1 {
			fmt.Fprint(out, "\033[H\033[2J") // home + clear between frames
		}
		render(out, tick, *interval, cur, prev)
		for _, st := range cur {
			if st.err == nil {
				prev[st.target] = st
			}
		}
		if *count > 0 && tick >= *count {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}
