package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ringsched/internal/service"
)

func writeScript(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "edits.txt")
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPrintExampleParses(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-print-example"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	edits, err := parseScript(&out)
	if err != nil {
		t.Fatalf("example script does not parse: %v", err)
	}
	if len(edits) != 5 {
		t.Fatalf("example has %d edits, want 5", len(edits))
	}
}

func TestOfflineReplay(t *testing.T) {
	script := writeScript(t, `
add gyro 10 4096
add telemetry 50 65536
modify telemetry 25 65536
remove gyro
`)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-script", script, "-bw", "16"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"add", "modify", "remove", "reprobed=", "final: 1 streams at version 5", "+modified-802.5"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestOfflineReplayJSON(t *testing.T) {
	script := writeScript(t, "add a 10 4096\nadd b 20 4096\n")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-script", script, "-bw", "16", "-json", "-protocols", "fddi"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(strings.NewReader(out.String()))
	var results []editResult
	for i := 0; i < 2; i++ {
		var r editResult
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("decode edit %d: %v", i, err)
		}
		results = append(results, r)
	}
	var final finalState
	if err := dec.Decode(&final); err != nil {
		t.Fatalf("decode final state: %v", err)
	}
	if results[1].Version != 3 || len(results[1].Deltas) != 1 || results[1].Deltas[0].Protocol != "fddi" {
		t.Fatalf("second edit %+v, want version 3 with one fddi delta", results[1])
	}
	if final.Version != 3 || len(final.Streams) != 2 {
		t.Fatalf("final state %+v, want version 3 with 2 streams", final)
	}
}

func TestScriptErrors(t *testing.T) {
	for _, tc := range []struct{ script, wantErr string }{
		{"add a 10", "want"},
		{"add a ten 4096", "bad number"},
		{"frobnicate a", "unknown op"},
		{"remove ghost", "no stream named"},
		{"modify ghost 10 100", "no stream named"},
	} {
		script := writeScript(t, tc.script)
		err := run(context.Background(), []string{"-script", script, "-bw", "16"}, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("script %q: error %v, want containing %q", tc.script, err, tc.wantErr)
		}
	}
}

// TestOnlineReplayMatchesOffline replays one script both offline and
// against a live in-process ringschedd; the per-edit verdict outcomes
// must agree (same engine, different transport).
func TestOnlineReplayMatchesOffline(t *testing.T) {
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	script := `
add gyro 10 4096
add crush 6 1048576
add late 500 2048
remove crush
`
	args := []string{"-bw", "4", "-scenario", "lossy-token", "-json"}
	runOnce := func(extra ...string) string {
		t.Helper()
		var out bytes.Buffer
		all := append(append([]string{"-script", writeScript(t, script)}, args...), extra...)
		if err := run(context.Background(), all, &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	offline := runOnce()
	online := runOnce("-base", ts.URL)

	parse := func(s string) []editResult {
		t.Helper()
		dec := json.NewDecoder(strings.NewReader(s))
		var rs []editResult
		for i := 0; i < 4; i++ {
			var r editResult
			if err := dec.Decode(&r); err != nil {
				t.Fatalf("decode edit %d: %v", i, err)
			}
			rs = append(rs, r)
		}
		return rs
	}
	off, on := parse(offline), parse(online)
	for i := range off {
		if off[i].Version != on[i].Version || off[i].Reprobed != on[i].Reprobed {
			t.Fatalf("edit %d: offline %+v != online %+v", i, off[i], on[i])
		}
		for j := range off[i].Deltas {
			od, nd := off[i].Deltas[j], on[i].Deltas[j]
			if od.Protocol != nd.Protocol || od.Schedulable != nd.Schedulable {
				t.Fatalf("edit %d delta %d: offline %+v != online %+v", i, j, od, nd)
			}
		}
	}
}
