package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"ringsched/internal/service"
	"ringsched/ringschedclient"
)

// TestVerifyHistory edits a live ring with awkward float parameters,
// then runs the -verify-history mode and requires it to certify
// bit-identical verdicts (compacted-trail replay is proven separately
// in the ringstate audit tests).
func TestVerifyHistory(t *testing.T) {
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	c := ringschedclient.New(ts.URL, ringschedclient.Options{})
	ctx := context.Background()
	sess, _, err := c.CreateRing(ctx, ringschedclient.RingCreateRequest{
		BandwidthMbps: 4,
		FaultModel:    "loss:p=1e-3",
		Streams: []ringschedclient.RingStreamSpec{
			{Name: "gyro", PeriodMs: 10, LengthBits: 4096},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Non-representable thirds keep the float math honest.
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		re, err := sess.AddStream(ctx, ringschedclient.RingStreamSpec{
			PeriodMs: 10 + float64(i)/3, LengthBits: 4096 * float64(i+1),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, re.StreamID)
	}
	if _, err := sess.ModifyStream(ctx, ids[2], ringschedclient.RingStreamSpec{
		PeriodMs: 7.0 / 3, LengthBits: 9999,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RemoveStream(ctx, ids[5]); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err = run(context.Background(),
		[]string{"-base", ts.URL, "-verify-history", sess.ID()}, &out, io.Discard)
	if err != nil {
		t.Fatalf("verify-history failed: %v", err)
	}
	if !strings.Contains(out.String(), "verified: ring "+sess.ID()) {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

func TestVerifyHistoryDetectsDivergence(t *testing.T) {
	live := []wireVerdict{{Protocol: "802.4", Schedulable: true, Utilization: 0.30000000000000004}}
	repl := []wireVerdict{{Protocol: "802.4", Schedulable: true, Utilization: 0.3}}
	if err := compareVerdicts(live, repl); err == nil {
		t.Fatal("0.30000000000000004 vs 0.3 must not compare equal")
	}
	// Sanity: identical verdicts pass, and stream order is ignored.
	a := wireStream{PeriodMs: 10, Schedulable: true}
	b := wireStream{PeriodMs: 20, Schedulable: false}
	l := []wireVerdict{{Protocol: "p", Streams: []wireStream{a, b}}}
	r := []wireVerdict{{Protocol: "p", Streams: []wireStream{b, a}}}
	if err := compareVerdicts(l, r); err != nil {
		t.Fatalf("order-insensitive compare failed: %v", err)
	}
}

func TestVerifyHistoryRequiresBase(t *testing.T) {
	err := run(context.Background(), []string{"-verify-history", "r1"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-base") {
		t.Fatalf("want -base requirement error, got %v", err)
	}
}

