package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"ringsched/internal/ringstate"
	"ringsched/ringschedclient"
)

// verifyHistory is the -verify-history mode: fetch a live ring's audit
// trail in its script serialization, replay it offline through a fresh
// incremental engine built from the ring's own config, and require the
// replayed verdicts to be bit-identical to the live ones. Audit records
// carry server-assigned stream IDs and the replay assigns its own, so
// per-stream verdicts are compared as multisets with identity ignored;
// the admission math depends only on (period, length) and canonical
// position, which the replay reproduces exactly.
func verifyHistory(ctx context.Context, base, ringID string, out io.Writer) error {
	c := ringschedclient.New(base, ringschedclient.Options{})
	sess, state, err := c.OpenRing(ctx, ringID)
	if err != nil {
		return err
	}
	// The trail and the state must describe the same version. The script
	// header names the version it was cut at; refetch both until they
	// agree, so a concurrent editor cannot make the verification lie.
	var script string
	for attempt := 0; ; attempt++ {
		if script, err = sess.HistoryScript(ctx); err != nil {
			return err
		}
		if state, err = sess.Refresh(ctx); err != nil {
			return err
		}
		if v, ok := scriptVersion(script); ok && v == state.Version {
			break
		}
		if attempt == 2 {
			return fmt.Errorf("ringadmit: ring %s is being edited concurrently; history and state never settled", ringID)
		}
	}
	liveVersion := state.Version

	edits, err := parseScript(strings.NewReader(script))
	if err != nil {
		return fmt.Errorf("ringadmit: history script does not parse: %w", err)
	}
	replay, err := newOfflineReplayer(ringstate.Config{
		Protocols:     state.Protocols,
		BandwidthMbps: state.BandwidthMbps,
		FaultSpec:     state.FaultModel,
	}, "")
	if err != nil {
		return err
	}
	for _, e := range edits {
		if _, err := replay.apply(ctx, e); err != nil {
			return fmt.Errorf("ringadmit: replay line %d (%s %s): %w", e.line, e.op, e.name, err)
		}
	}

	var live []wireVerdict
	if err := json.Unmarshal(state.Verdicts, &live); err != nil {
		return fmt.Errorf("ringadmit: live verdicts do not decode: %w", err)
	}
	replayed := make([]wireVerdict, 0, 3)
	for _, v := range replay.eng.Verdicts() {
		replayed = append(replayed, wireFromEngine(v))
	}
	if err := compareVerdicts(live, replayed); err != nil {
		return fmt.Errorf("ringadmit: ring %s version %d: %w", ringID, liveVersion, err)
	}
	fmt.Fprintf(out, "verified: ring %s version %d — %d edits replayed, %d protocol verdicts bit-identical\n",
		ringID, liveVersion, len(edits), len(live))
	return nil
}

// scriptVersion reads the version out of the script's header comment
// ("# ring <id> history (version N)").
func scriptVersion(script string) (uint64, bool) {
	line, _, _ := strings.Cut(script, "\n")
	const marker = "(version "
	i := strings.Index(line, marker)
	if i < 0 || !strings.HasSuffix(line, ")") {
		return 0, false
	}
	var v uint64
	if _, err := fmt.Sscanf(line[i+len(marker):len(line)-1], "%d", &v); err != nil {
		return 0, false
	}
	return v, true
}

// wireVerdict mirrors the server's ring verdict JSON. Stream IDs are the
// wire's string handles; the replay side leaves them empty and the
// comparison never reads them.
type wireVerdict struct {
	Protocol             string        `json:"protocol"`
	Schedulable          bool          `json:"schedulable"`
	Utilization          float64       `json:"utilization"`
	AugmentedUtilization float64       `json:"augmentedUtilization"`
	Blocking             float64       `json:"blocking"`
	Theta                float64       `json:"theta"`
	FrameTime            float64       `json:"frameTime"`
	TTRT                 float64       `json:"ttrt"`
	Overhead             float64       `json:"overhead"`
	TotalAllocation      float64       `json:"totalAllocation"`
	Capacity             float64       `json:"capacity"`
	Degraded             *wireDegraded `json:"degraded"`
	Streams              []wireStream  `json:"streams"`
}

type wireDegraded struct {
	Schedulable     bool    `json:"schedulable"`
	Availability    float64 `json:"availability"`
	Losses          float64 `json:"losses"`
	Recovery        float64 `json:"recovery"`
	Blocking        float64 `json:"blocking"`
	TotalAllocation float64 `json:"totalAllocation"`
	Capacity        float64 `json:"capacity"`
}

type wireStream struct {
	PeriodMs          float64 `json:"periodMs"`
	Frames            int     `json:"frames"`
	Q                 int     `json:"q"`
	AugmentedLength   float64 `json:"augmentedLength"`
	ResponseTime      float64 `json:"responseTime"`
	Allocation        float64 `json:"allocation"`
	WorstCaseResponse float64 `json:"worstCaseResponse"`
	Schedulable       bool    `json:"schedulable"`
}

// wireFromEngine converts an engine verdict to the wire shape, applying
// the same degraded-allocation mapping the server does (+Inf is not
// representable in JSON and travels as -1).
func wireFromEngine(v ringstate.Verdict) wireVerdict {
	out := wireVerdict{
		Protocol:             v.Protocol,
		Schedulable:          v.Schedulable,
		Utilization:          v.Utilization,
		AugmentedUtilization: v.AugmentedUtilization,
		Blocking:             v.Blocking,
		Theta:                v.Theta,
		FrameTime:            v.FrameTime,
		TTRT:                 v.TTRT,
		Overhead:             v.Overhead,
		TotalAllocation:      v.TotalAllocation,
		Capacity:             v.Capacity,
	}
	if v.Degraded != nil {
		d := wireDegraded{
			Schedulable:     v.Degraded.Schedulable,
			Availability:    v.Degraded.Availability,
			Losses:          v.Degraded.Losses,
			Recovery:        v.Degraded.Recovery,
			Blocking:        v.Degraded.Blocking,
			TotalAllocation: v.Degraded.TotalAllocation,
			Capacity:        v.Degraded.Capacity,
		}
		if math.IsInf(d.TotalAllocation, 1) {
			d.TotalAllocation = -1
		}
		out.Degraded = &d
	}
	for _, sv := range v.Streams {
		out.Streams = append(out.Streams, wireStream{
			PeriodMs:          sv.PeriodMs,
			Frames:            sv.Frames,
			Q:                 sv.Q,
			AugmentedLength:   sv.AugmentedLength,
			ResponseTime:      sv.ResponseTime,
			Allocation:        sv.Allocation,
			WorstCaseResponse: sv.WorstCaseResponse,
			Schedulable:       sv.Schedulable,
		})
	}
	return out
}

// bits renders a float for exact comparison and reporting: the IEEE-754
// payload, so 0.1+0.2 and 0.3 do not pass as equal.
func bits(f float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(f))
}

// streamKey renders one per-stream verdict as a comparable string with
// identity (ID, name) excluded.
func streamKey(s wireStream) string {
	return fmt.Sprintf("%s|%d|%d|%s|%s|%s|%s|%v",
		bits(s.PeriodMs), s.Frames, s.Q, bits(s.AugmentedLength),
		bits(s.ResponseTime), bits(s.Allocation), bits(s.WorstCaseResponse), s.Schedulable)
}

func compareVerdicts(live, replayed []wireVerdict) error {
	if len(live) != len(replayed) {
		return fmt.Errorf("verdict count differs: live %d, replay %d", len(live), len(replayed))
	}
	byProto := map[string]wireVerdict{}
	for _, v := range replayed {
		byProto[v.Protocol] = v
	}
	for _, lv := range live {
		rv, ok := byProto[lv.Protocol]
		if !ok {
			return fmt.Errorf("protocol %s missing from replay", lv.Protocol)
		}
		scalars := []struct {
			name       string
			live, repl float64
		}{
			{"utilization", lv.Utilization, rv.Utilization},
			{"augmentedUtilization", lv.AugmentedUtilization, rv.AugmentedUtilization},
			{"blocking", lv.Blocking, rv.Blocking},
			{"theta", lv.Theta, rv.Theta},
			{"frameTime", lv.FrameTime, rv.FrameTime},
			{"ttrt", lv.TTRT, rv.TTRT},
			{"overhead", lv.Overhead, rv.Overhead},
			{"totalAllocation", lv.TotalAllocation, rv.TotalAllocation},
			{"capacity", lv.Capacity, rv.Capacity},
		}
		if lv.Schedulable != rv.Schedulable {
			return fmt.Errorf("%s: schedulable live=%v replay=%v", lv.Protocol, lv.Schedulable, rv.Schedulable)
		}
		for _, s := range scalars {
			if math.Float64bits(s.live) != math.Float64bits(s.repl) {
				return fmt.Errorf("%s: %s differs: live %s replay %s (%v vs %v)",
					lv.Protocol, s.name, bits(s.live), bits(s.repl), s.live, s.repl)
			}
		}
		if (lv.Degraded == nil) != (rv.Degraded == nil) {
			return fmt.Errorf("%s: degraded presence differs", lv.Protocol)
		}
		if lv.Degraded != nil {
			ld, rd := lv.Degraded, rv.Degraded
			if ld.Schedulable != rd.Schedulable {
				return fmt.Errorf("%s: degraded schedulable live=%v replay=%v", lv.Protocol, ld.Schedulable, rd.Schedulable)
			}
			dscalars := []struct {
				name       string
				live, repl float64
			}{
				{"availability", ld.Availability, rd.Availability},
				{"losses", ld.Losses, rd.Losses},
				{"recovery", ld.Recovery, rd.Recovery},
				{"blocking", ld.Blocking, rd.Blocking},
				{"totalAllocation", ld.TotalAllocation, rd.TotalAllocation},
				{"capacity", ld.Capacity, rd.Capacity},
			}
			for _, s := range dscalars {
				if math.Float64bits(s.live) != math.Float64bits(s.repl) {
					return fmt.Errorf("%s: degraded %s differs: live %s replay %s",
						lv.Protocol, s.name, bits(s.live), bits(s.repl))
				}
			}
		}
		if len(lv.Streams) != len(rv.Streams) {
			return fmt.Errorf("%s: stream count differs: live %d replay %d",
				lv.Protocol, len(lv.Streams), len(rv.Streams))
		}
		lk := make([]string, len(lv.Streams))
		rk := make([]string, len(rv.Streams))
		for i := range lv.Streams {
			lk[i] = streamKey(lv.Streams[i])
			rk[i] = streamKey(rv.Streams[i])
		}
		sort.Strings(lk)
		sort.Strings(rk)
		for i := range lk {
			if lk[i] != rk[i] {
				return fmt.Errorf("%s: per-stream verdict multiset differs at %d:\n  live   %s\n  replay %s",
					lv.Protocol, i, lk[i], rk[i])
			}
		}
	}
	return nil
}
