// Command ringadmit replays an online admission-control edit script
// against a ring: a sequence of add / modify / remove edits, each
// answered with the incremental per-protocol verdict delta. By default
// the script runs offline through the in-process incremental engine;
// with -base it runs against a live ringschedd /v1/rings session
// (created for the run and deleted afterwards), exercising the same
// engine over the wire with optimistic concurrency.
//
// Script format, one edit per line (# comments and blank lines ignored):
//
//	add <name> <periodMs> <lengthBits>
//	modify <name> <periodMs> <lengthBits>
//	remove <name>
//
// Names are script-local handles: modify and remove address the most
// recent add with that name.
//
// Usage:
//
//	ringadmit -print-example > edits.txt
//	ringadmit -script edits.txt -bw 16
//	ringadmit -script edits.txt -bw 16 -scenario lossy-token -json
//	ringadmit -script edits.txt -base http://localhost:8080
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ringsched/internal/cli"
	"ringsched/internal/faults"
	"ringsched/internal/ringstate"
	"ringsched/ringschedclient"
)

func main() {
	cli.Main("ringadmit", run)
}

const exampleScript = `# ringadmit edit script: grow a ring until admission fails.
add gyro 10 4096
add telemetry 50 65536
add video 100 1048576
modify video 100 2097152
remove telemetry
`

// edit is one parsed script line.
type edit struct {
	op     string
	name   string
	stream ringstate.Stream
	line   int
}

func parseScript(r io.Reader) ([]edit, error) {
	var edits []edit
	sc := bufio.NewScanner(r)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		e := edit{op: f[0], line: line}
		switch e.op {
		case "add", "modify":
			if len(f) != 4 {
				return nil, fmt.Errorf("line %d: want %q, got %q", line, e.op+" <name> <periodMs> <lengthBits>", text)
			}
			period, err1 := strconv.ParseFloat(f[2], 64)
			bits, err2 := strconv.ParseFloat(f[3], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad number in %q", line, text)
			}
			e.name = f[1]
			e.stream = ringstate.Stream{Name: f[1], PeriodMs: period, LengthBits: bits}
		case "remove":
			if len(f) != 2 {
				return nil, fmt.Errorf("line %d: want %q, got %q", line, "remove <name>", text)
			}
			e.name = f[1]
		default:
			return nil, fmt.Errorf("line %d: unknown op %q (want add, modify or remove)", line, e.op)
		}
		edits = append(edits, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return edits, nil
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ringadmit", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		scriptPath   = fs.String("script", "", `edit script file ("-" or empty = stdin)`)
		bwMbps       = fs.Float64("bw", 100, "network bandwidth in Mbps")
		protocols    = fs.String("protocols", "", "comma-separated protocol slugs (default: all three)")
		faultSpec    = fs.String("fault-model", "", "fault model spec for side-by-side degraded verdicts")
		scenario     = fs.String("scenario", "", "named fault scenario (mutually exclusive with -fault-model)")
		base         = fs.String("base", "", "ringschedd base URL; empty replays offline through the in-process engine")
		jsonOut      = fs.Bool("json", false, "emit one JSON object per edit plus the final ring state")
		printExample = fs.Bool("print-example", false, "print an example edit script and exit")
		verifyRing   = fs.String("verify-history", "",
			"ring ID: fetch its audit trail from -base, replay it offline, and require bit-identical verdicts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *printExample {
		_, err := io.WriteString(out, exampleScript)
		return err
	}
	if *verifyRing != "" {
		if *base == "" {
			return fmt.Errorf("-verify-history requires -base (the ringschedd holding the ring)")
		}
		return verifyHistory(ctx, *base, *verifyRing, out)
	}
	if *faultSpec != "" && *scenario != "" {
		return fmt.Errorf("-fault-model and -scenario are mutually exclusive")
	}

	in := io.Reader(os.Stdin)
	if *scriptPath != "" && *scriptPath != "-" {
		f, err := os.Open(*scriptPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	edits, err := parseScript(in)
	if err != nil {
		return err
	}

	var protos []string
	if *protocols != "" {
		for _, p := range strings.Split(*protocols, ",") {
			protos = append(protos, strings.TrimSpace(p))
		}
	}

	var replay replayer
	if *base == "" {
		replay, err = newOfflineReplayer(ringstate.Config{
			Protocols:     protos,
			BandwidthMbps: *bwMbps,
			FaultSpec:     *faultSpec,
		}, *scenario)
	} else {
		replay, err = newOnlineReplayer(ctx, *base, protos, *bwMbps, *faultSpec, *scenario)
	}
	if err != nil {
		return err
	}
	defer replay.close(ctx)

	enc := json.NewEncoder(out)
	for _, e := range edits {
		res, err := replay.apply(ctx, e)
		if err != nil {
			return fmt.Errorf("line %d (%s %s): %w", e.line, e.op, e.name, err)
		}
		if *jsonOut {
			if err := enc.Encode(res); err != nil {
				return err
			}
			continue
		}
		fmt.Fprintf(out, "%-6s %-12s v%-3d reprobed=%-3d %s\n",
			e.op, e.name, res.Version, res.Reprobed, res.verdictSummary())
	}
	if *jsonOut {
		state, err := replay.state(ctx)
		if err != nil {
			return err
		}
		return enc.Encode(state)
	}
	state, err := replay.state(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "final: %d streams at version %d\n", len(state.Streams), state.Version)
	for _, v := range state.Summary {
		fmt.Fprintf(out, "  %-16s schedulable=%v\n", v.Protocol, v.Schedulable)
	}
	return nil
}

// editResult is one edit's outcome, shape-shared between the offline
// and online replayers.
type editResult struct {
	Op       string         `json:"op"`
	Name     string         `json:"name"`
	Version  uint64         `json:"version"`
	StreamID string         `json:"streamId,omitempty"`
	Reprobed int            `json:"reprobed"`
	Deltas   []protoOutcome `json:"deltas"`
}

// protoOutcome is one protocol's outcome line.
type protoOutcome struct {
	Protocol          string `json:"protocol"`
	Schedulable       bool   `json:"schedulable"`
	EditedSchedulable *bool  `json:"editedSchedulable,omitempty"`
}

func (r editResult) verdictSummary() string {
	var b strings.Builder
	for i, d := range r.Deltas {
		if i > 0 {
			b.WriteByte(' ')
		}
		mark := "+"
		if !d.Schedulable {
			mark = "!"
		}
		if d.EditedSchedulable != nil && !*d.EditedSchedulable {
			mark = "-"
		}
		b.WriteString(mark + d.Protocol)
	}
	return b.String()
}

// finalState is the replay's closing summary.
type finalState struct {
	Version uint64         `json:"version"`
	Streams []string       `json:"streams"`
	Summary []protoOutcome `json:"summary"`
}

type replayer interface {
	apply(ctx context.Context, e edit) (editResult, error)
	state(ctx context.Context) (finalState, error)
	close(ctx context.Context)
}

// offlineReplayer drives the in-process incremental engine directly.
type offlineReplayer struct {
	eng *ringstate.Engine
	ids map[string]uint64
	ver uint64
}

func newOfflineReplayer(cfg ringstate.Config, scenario string) (*offlineReplayer, error) {
	if scenario != "" {
		spec, err := scenarioSpec(scenario)
		if err != nil {
			return nil, err
		}
		cfg.FaultSpec = spec
	}
	eng, err := ringstate.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &offlineReplayer{eng: eng, ids: map[string]uint64{}, ver: 1}, nil
}

func (o *offlineReplayer) apply(_ context.Context, e edit) (editResult, error) {
	var delta *ringstate.Delta
	var err error
	id, known := o.ids[e.name]
	switch e.op {
	case "add":
		id, delta, err = o.eng.Add(e.stream)
		if err == nil {
			o.ids[e.name] = id
		}
	case "modify":
		if !known {
			return editResult{}, fmt.Errorf("no stream named %q has been added", e.name)
		}
		delta, err = o.eng.Modify(id, e.stream)
	case "remove":
		if !known {
			return editResult{}, fmt.Errorf("no stream named %q has been added", e.name)
		}
		delta, err = o.eng.Remove(id)
		if err == nil {
			delete(o.ids, e.name)
		}
	}
	if err != nil {
		return editResult{}, err
	}
	o.ver++
	res := editResult{
		Op: e.op, Name: e.name, Version: o.ver,
		StreamID: "s" + strconv.FormatUint(id, 10), Reprobed: delta.Reprobed,
	}
	for _, pd := range delta.Protocols {
		po := protoOutcome{Protocol: pd.Protocol, Schedulable: pd.Schedulable}
		if e.op != "remove" {
			ok := pd.EditedSchedulable
			po.EditedSchedulable = &ok
		}
		res.Deltas = append(res.Deltas, po)
	}
	return res, nil
}

func (o *offlineReplayer) state(context.Context) (finalState, error) {
	st := finalState{Version: o.ver, Streams: []string{}}
	for _, s := range o.eng.Snapshot() {
		st.Streams = append(st.Streams, s.Name)
	}
	for _, v := range o.eng.Verdicts() {
		st.Summary = append(st.Summary, protoOutcome{Protocol: v.Protocol, Schedulable: v.Schedulable})
	}
	return st, nil
}

func (o *offlineReplayer) close(context.Context) {}

// scenarioSpec resolves a named scenario to its canonical spec string;
// ringstate configs carry specs, not scenario names, mirroring how the
// service resolves the pair before building an engine.
func scenarioSpec(name string) (string, error) {
	sc, err := faults.ScenarioByName(strings.TrimSpace(name))
	if err != nil {
		return "", err
	}
	if !sc.Model.Active() {
		return "", nil
	}
	return sc.Model.Spec(), nil
}

// onlineReplayer drives a live /v1/rings session.
type onlineReplayer struct {
	sess *ringschedclient.RingSession
	ids  map[string]string
}

func newOnlineReplayer(ctx context.Context, base string, protos []string, bw float64, faultSpec, scenario string) (*onlineReplayer, error) {
	c := ringschedclient.New(base, ringschedclient.Options{})
	sess, _, err := c.CreateRing(ctx, ringschedclient.RingCreateRequest{
		Protocols:     protos,
		BandwidthMbps: bw,
		FaultModel:    faultSpec,
		Scenario:      scenario,
	})
	if err != nil {
		return nil, err
	}
	return &onlineReplayer{sess: sess, ids: map[string]string{}}, nil
}

func (o *onlineReplayer) apply(ctx context.Context, e edit) (editResult, error) {
	var re *ringschedclient.RingEdit
	var err error
	id, known := o.ids[e.name]
	spec := ringschedclient.RingStreamSpec{Name: e.stream.Name, PeriodMs: e.stream.PeriodMs, LengthBits: e.stream.LengthBits}
	switch e.op {
	case "add":
		re, err = o.sess.AddStream(ctx, spec)
		if err == nil {
			o.ids[e.name] = re.StreamID
		}
	case "modify":
		if !known {
			return editResult{}, fmt.Errorf("no stream named %q has been added", e.name)
		}
		re, err = o.sess.ModifyStream(ctx, id, spec)
	case "remove":
		if !known {
			return editResult{}, fmt.Errorf("no stream named %q has been added", e.name)
		}
		re, err = o.sess.RemoveStream(ctx, id)
		if err == nil {
			delete(o.ids, e.name)
		}
	}
	if err != nil {
		return editResult{}, err
	}
	res := editResult{
		Op: e.op, Name: e.name, Version: re.Version,
		StreamID: re.StreamID, Reprobed: re.Reprobed,
	}
	for _, pd := range re.Deltas {
		res.Deltas = append(res.Deltas, protoOutcome{
			Protocol:          pd.Protocol,
			Schedulable:       pd.Schedulable,
			EditedSchedulable: pd.EditedSchedulable,
		})
	}
	return res, nil
}

func (o *onlineReplayer) state(ctx context.Context) (finalState, error) {
	rs, err := o.sess.Refresh(ctx)
	if err != nil {
		return finalState{}, err
	}
	st := finalState{Version: rs.Version, Streams: []string{}}
	for _, s := range rs.Streams {
		st.Streams = append(st.Streams, s.Name)
	}
	var verdicts []struct {
		Protocol    string `json:"protocol"`
		Schedulable bool   `json:"schedulable"`
	}
	if err := json.Unmarshal(rs.Verdicts, &verdicts); err != nil {
		return finalState{}, err
	}
	for _, v := range verdicts {
		st.Summary = append(st.Summary, protoOutcome{Protocol: v.Protocol, Schedulable: v.Schedulable})
	}
	return st, nil
}

func (o *onlineReplayer) close(ctx context.Context) {
	// Best effort: the ring was created for this replay, clean it up.
	_ = o.sess.Delete(ctx)
}
