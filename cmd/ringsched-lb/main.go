// Command ringsched-lb is the cluster front door for a sharded ringschedd
// deployment: it health-checks the member set, routes each cacheable API
// request to the replica that owns its canonical key on the cluster's
// consistent-hash ring (so the shard caches stay hot and an identical
// burst lands on one coalescing point), and fails over to any healthy
// replica when the owner is down or misbehaving. Requests whose body
// cannot be decoded are routed to any healthy backend, which produces the
// canonical 400.
//
// Per-backend resilience comes from ringschedclient: each backend gets
// its own circuit breaker, retries are budgeted, and Retry-After hints
// are honored. Streaming sweeps (SSE) are proxied raw to the owner.
//
// Usage:
//
//	ringsched-lb -backends 10.0.0.1:8081,10.0.0.2:8081,10.0.0.3:8081
//	ringsched-lb -addr :8090 -backends a:8081,b:8081 -rise 2 -fall 3
//	curl -s localhost:8090/healthz
//	curl -s localhost:8090/metrics | grep ringschedlb
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"ringsched/internal/cli"
	"ringsched/internal/cluster"
	"ringsched/internal/promtext"
	"ringsched/internal/service"
	"ringsched/internal/trace"
	"ringsched/ringschedclient"
)

func main() {
	cli.Main("ringsched-lb", run)
}

// lbConfig tunes the front door; the zero value is filled by defaults.
type lbConfig struct {
	Backends      []string
	VNodes        int
	CheckInterval time.Duration
	CheckTimeout  time.Duration
	Rise, Fall    int
	Retries       int
	Deadline      time.Duration
	Hedge         time.Duration
	Logger        *slog.Logger
}

// lb routes requests for one backend set. It is safe for concurrent use.
type lb struct {
	cfg     lbConfig
	ring    *cluster.Ring
	checker *cluster.Checker
	pool    *ringschedclient.Pool
	mux     *http.ServeMux
	tracer  *trace.Tracer
	spans   *trace.Ring
	logger  *slog.Logger

	requests *promtext.CounterVec   // backend, code
	routed   *promtext.CounterVec   // route (owner | fallback | any)
	proxySSE *promtext.CounterVec   // backend
	stages   *promtext.HistogramVec // stage (read | route | forward | stream)
}

// lbStageForSpan maps lb span names to the stage label of
// ringschedlb_stage_seconds, mirroring the backend's stage histogram.
var lbStageForSpan = map[string]string{
	"lb.read":    "read",
	"lb.route":   "route",
	"lb.forward": "forward",
	"lb.stream":  "stream",
}

func newLB(cfg lbConfig) (*lb, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("ringsched-lb: at least one backend required")
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = 500 * time.Millisecond
	}
	if cfg.CheckTimeout <= 0 {
		cfg.CheckTimeout = time.Second
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	l := &lb{
		cfg:    cfg,
		ring:   cluster.New(cfg.VNodes, cfg.Backends...),
		mux:    http.NewServeMux(),
		logger: cfg.Logger,
		pool: ringschedclient.NewPool(ringschedclient.Options{
			MaxRetries: cfg.Retries,
			Deadline:   cfg.Deadline,
			Hedge:      cfg.Hedge,
		}),
		requests: promtext.NewCounterVec("ringschedlb_requests_total",
			"Requests proxied by backend and status code."),
		routed: promtext.NewCounterVec("ringschedlb_routed_total",
			"Routing decisions: owner (shard owner served), fallback (owner skipped or failed over), any (no shard key — undecodable body or unsharded endpoint)."),
		proxySSE: promtext.NewCounterVec("ringschedlb_sse_streams_total",
			"SSE streams proxied by backend."),
		stages: promtext.NewHistogramVec("ringschedlb_stage_seconds",
			"Time per lb pipeline stage (read | route | forward | stream), derived from spans."),
		spans: trace.NewRing(4096),
	}
	l.checker = cluster.NewChecker(l.ring.Members(), cluster.CheckerConfig{
		Interval: cfg.CheckInterval,
		Timeout:  cfg.CheckTimeout,
		Rise:     cfg.Rise,
		Fall:     cfg.Fall,
		OnChange: func(member string, healthy bool) {
			l.logger.LogAttrs(context.Background(), slog.LevelWarn, "backend health changed",
				slog.String("backend", member), slog.Bool("healthy", healthy))
		},
	})
	stageSink := trace.SinkFunc(func(rec trace.Record) {
		if stage, ok := lbStageForSpan[rec.Name]; ok {
			l.stages.Observe(promtext.Labels("stage", stage), rec.DurationUS/1e6)
		}
	})
	l.tracer = trace.New(trace.Tee(l.spans, stageSink))
	l.mux.HandleFunc("/v1/analyze", l.route("analyze"))
	l.mux.HandleFunc("/v1/sweep", l.route("sweep"))
	l.mux.HandleFunc("/v1/topology/analyze", l.route("topology"))
	l.mux.HandleFunc("/v1/experiments", l.route("experiments"))
	l.mux.HandleFunc("/healthz", l.handleHealthz)
	l.mux.HandleFunc("/metrics", l.handleMetrics)
	// The federated trace view: the lb holds its own spans and scatters
	// to every configured backend WITHOUT local=1, so a backend running
	// -peers the lb does not front still contributes its peers' spans
	// (the merge dedups any overlap).
	l.mux.Handle("/debug/traces", &trace.DebugServer{
		Ring:           l.spans,
		Self:           "ringsched-lb",
		Peers:          func() []string { return l.ring.Members() },
		Fetch:          l.fetchBackendTrace,
		ScatterTimeout: cfg.CheckTimeout,
	})
	return l, nil
}

// Handler returns the root handler.
func (l *lb) Handler() http.Handler { return l.mux }

// fetchBackendTrace pulls one backend's view of a trace through the same
// breaker-isolated client pool as proxied requests. No local=1 here: a
// clustered backend answers with its whole peer set's spans, already
// member-stamped, and Merge dedups whatever overlaps.
func (l *lb) fetchBackendTrace(ctx context.Context, backend, traceID string) ([]trace.Record, error) {
	body, err := l.pool.Client(backend).Call(ctx, http.MethodGet,
		"/debug/traces?trace="+url.QueryEscape(traceID), nil)
	if err != nil {
		return nil, err
	}
	var resp struct {
		Spans []trace.Record `json:"spans"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("ringsched-lb: bad trace response from %s: %v", backend, err)
	}
	return resp.Spans, nil
}

// shardKey decodes one cacheable request body and computes its canonical
// cluster key. ok is false when the body does not decode or canonicalize
// — such requests are routed to any healthy backend, which answers with
// the canonical 400 (the lb never invents its own request validation).
func shardKey(endpoint string, body []byte) (string, bool) {
	switch endpoint {
	case "analyze":
		var req service.AnalyzeRequest
		if err := strictUnmarshal(body, &req); err != nil {
			return "", false
		}
		canon, err := req.Canonicalize()
		if err != nil {
			return "", false
		}
		return canon.CacheKey(), true
	case "sweep":
		var req service.SweepRequest
		if err := strictUnmarshal(body, &req); err != nil {
			return "", false
		}
		canon, err := req.Canonicalize()
		if err != nil {
			return "", false
		}
		return canon.CacheKey(), true
	case "topology":
		var req service.TopologyRequest
		if err := strictUnmarshal(body, &req); err != nil {
			return "", false
		}
		canon, err := req.Canonicalize()
		if err != nil {
			return "", false
		}
		return canon.CacheKey(), true
	default:
		return "", false
	}
}

// strictUnmarshal mirrors the backends' decoder settings so the lb and
// the replica agree on what decodes (and therefore on what shards).
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// candidates orders the backends to try: the healthy owner first, then
// every other healthy backend. route describes the decision for metrics.
func (l *lb) candidates(key string, haveKey bool) (list []string, route string) {
	healthy := l.checker.HealthyMembers()
	if !haveKey {
		return healthy, "any"
	}
	owner := l.ring.Owner(key)
	if owner == "" {
		return healthy, "any"
	}
	if !l.checker.Healthy(owner) {
		return healthy, "fallback"
	}
	list = append(list, owner)
	for _, m := range healthy {
		if m != owner {
			list = append(list, m)
		}
	}
	return list, "owner"
}

// passthrough lifts the client-identity header off the inbound request so
// the backend's per-client rate limiting keys on the real client, not on
// the lb.
func passthrough(r *http.Request) http.Header {
	extra := http.Header{}
	if v := r.Header.Get("X-Ringsched-Client"); v != "" {
		extra.Set("X-Ringsched-Client", v)
	}
	return extra
}

// route builds the handler for one API endpoint.
func (l *lb) route(endpoint string) http.HandlerFunc {
	path := map[string]string{
		"analyze":     "/v1/analyze",
		"sweep":       "/v1/sweep",
		"topology":    "/v1/topology/analyze",
		"experiments": "/v1/experiments",
	}[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		// Adopt the client's trace ID (or mint one): the span rides the
		// context into ringschedclient, which forwards the header, so the
		// client, the lb, and the serving replica share one trace.
		id, _ := trace.ParseTraceID(r.Header.Get("X-Ringsched-Trace"))
		ctx := trace.WithTracer(r.Context(), l.tracer)
		ctx, sp := trace.StartRoot(ctx, "lb."+endpoint, id)
		defer sp.End()
		w.Header().Set("X-Ringsched-Trace", sp.TraceID().String())

		// Honor the client's deadline budget; ringschedclient re-derives
		// the header for the backend leg from the context deadline.
		if raw := r.Header.Get("X-Ringsched-Deadline-Ms"); raw != "" {
			if ms, err := strconv.ParseInt(raw, 10, 64); err == nil && ms > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
				defer cancel()
			}
		}

		_, rdsp := trace.Start(ctx, "lb.read")
		body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
		rdsp.End()
		if err != nil {
			http.Error(w, `{"error":"ringsched-lb: read body","code":"bad_request"}`, http.StatusBadRequest)
			return
		}
		_, rtsp := trace.Start(ctx, "lb.route")
		key, haveKey := "", false
		if r.Method == http.MethodPost && endpoint != "experiments" {
			key, haveKey = shardKey(endpoint, body)
		}
		cands, route := l.candidates(key, haveKey)
		rtsp.SetAttr("route", route)
		rtsp.End()
		l.routed.Add(promtext.Labels("route", route), 1)
		sp.SetAttr("route", route)
		if len(cands) == 0 {
			l.writeUnavailable(w, "no healthy backends")
			return
		}
		if wantsSSE(r) {
			l.proxySSE.Add(promtext.Labels("backend", cands[0]), 1)
			sctx, ssp := trace.Start(ctx, "lb.stream")
			l.streamProxy(sctx, w, r, cands[0], path, body)
			ssp.End()
			return
		}
		fctx, fsp := trace.Start(ctx, "lb.forward")
		l.forward(fctx, w, r, endpoint, path, cands, body)
		fsp.End()
	}
}

// forward tries each candidate through its resilient client until one
// answers. Server-side failures (5xx, transport, open breaker) fail over
// to the next candidate; client-blamed responses (4xx, including 429
// rate limiting) are returned verbatim — another backend would reject
// them identically, or the rate limit exists to be enforced.
func (l *lb) forward(ctx context.Context, w http.ResponseWriter, r *http.Request, endpoint, path string, cands []string, body []byte) {
	extra := passthrough(r)
	var lastErr error
	for i, backend := range cands {
		cli := l.pool.Client(backend)
		var payload any
		if len(body) > 0 {
			payload = json.RawMessage(body)
		}
		resp, hdr, err := cli.CallHeader(ctx, r.Method, path, payload, extra)
		if err == nil {
			l.requests.Add(promtext.Labels("backend", backend, "code", "200"), 1)
			if i > 0 {
				l.routed.Add(promtext.Labels("route", "fallback"), 1)
			}
			w.Header().Set("Content-Type", "application/json")
			if xc := hdr.Get("X-Cache"); xc != "" {
				w.Header().Set("X-Cache", xc)
			}
			w.Header().Set("X-Ringsched-Backend", backend)
			w.Write(resp)
			return
		}
		lastErr = err
		var ae *ringschedclient.APIError
		if errors.As(err, &ae) {
			l.requests.Add(promtext.Labels("backend", backend, "code", strconv.Itoa(ae.Status)), 1)
			if ae.Status < http.StatusInternalServerError {
				// The backend blamed the request (400, 429, ...): answer
				// verbatim instead of shopping for a second opinion.
				writeAPIError(w, backend, ae)
				return
			}
			continue // 5xx: try the next backend
		}
		l.requests.Add(promtext.Labels("backend", backend, "code", "error"), 1)
		if ctx.Err() != nil {
			break // the client's deadline elapsed; stop burning backends
		}
	}
	l.writeUnavailable(w, fmt.Sprintf("all backends failed (last: %v)", lastErr))
}

// streamProxy forwards an SSE request raw: single attempt against the
// chosen backend, response bytes copied through with flushes, no retry
// (a half-delivered stream must not restart invisibly).
func (l *lb) streamProxy(ctx context.Context, w http.ResponseWriter, r *http.Request, backend, path string, body []byte) {
	url := "http://" + backend + path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, url, strings.NewReader(string(body)))
	if err != nil {
		l.writeUnavailable(w, err.Error())
		return
	}
	for _, h := range []string{"Content-Type", "Accept", "X-Ringsched-Client", "X-Ringsched-Trace", "X-Ringsched-Deadline-Ms"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		l.requests.Add(promtext.Labels("backend", backend, "code", "error"), 1)
		l.writeUnavailable(w, err.Error())
		return
	}
	defer resp.Body.Close()
	l.requests.Add(promtext.Labels("backend", backend, "code", strconv.Itoa(resp.StatusCode)), 1)
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Ringsched-Backend", backend)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// writeAPIError reproduces a backend's typed rejection on the lb's own
// response, preserving code, message, and Retry-After.
func writeAPIError(w http.ResponseWriter, backend string, ae *ringschedclient.APIError) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Ringsched-Backend", backend)
	if ae.RetryAfter > 0 {
		secs := int64((ae.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(ae.Status)
	msg, _ := json.Marshal(map[string]any{
		"error": ae.Message, "code": string(ae.Code),
		"retryAfterMs": int64(ae.RetryAfter / time.Millisecond),
	})
	w.Write(append(msg, '\n'))
}

func (l *lb) writeUnavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	body, _ := json.Marshal(map[string]any{
		"error": "ringsched-lb: " + msg, "code": "unavailable", "retryAfterMs": 1000,
	})
	w.Write(append(body, '\n'))
}

// handleHealthz: the lb is healthy while it can route anywhere.
func (l *lb) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	healthy := l.checker.HealthyMembers()
	if len(healthy) == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"no healthy backends"}`)
		return
	}
	fmt.Fprintf(w, `{"status":"ok","healthyBackends":%d}`+"\n", len(healthy))
}

func (l *lb) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	l.requests.Write(w)
	l.routed.Write(w)
	l.proxySSE.Write(w)
	l.stages.Write(w)
	promtext.BuildInfo(w, "ringschedlb")
	states := l.checker.States()
	gauges := []promtext.GaugeFunc{
		{Name: "ringschedlb_backends", Help: "Configured backends.",
			Fn: func() float64 { return float64(l.ring.Size()) }},
		{Name: "ringschedlb_backends_healthy", Help: "Backends currently passing health checks.",
			Fn: func() float64 { return float64(len(l.checker.HealthyMembers())) }},
	}
	for _, g := range gauges {
		g.Write(w)
	}
	// Per-backend health as explicit 0/1 samples.
	fmt.Fprintf(w, "# HELP ringschedlb_backend_healthy Whether the backend is currently routable (1) or failed out (0).\n")
	fmt.Fprintf(w, "# TYPE ringschedlb_backend_healthy gauge\n")
	for _, st := range states {
		v := 0
		if st.Healthy {
			v = 1
		}
		fmt.Fprintf(w, "ringschedlb_backend_healthy%s %d\n",
			promtext.Labels("backend", st.Member), v)
	}
}

// wantsSSE mirrors the backend's own SSE detection.
func wantsSSE(r *http.Request) bool {
	return r.Header.Get("Accept") == "text/event-stream" || r.URL.Query().Get("stream") == "sse"
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ringsched-lb", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr     = fs.String("addr", ":8090", "listen address (host:port; port 0 picks a free port)")
		backends = fs.String("backends", "", "comma-separated backend addresses (host:port,...); required")
		vnodes   = fs.Int("vnodes", 0,
			"consistent-hash virtual nodes per backend; must match the backends' -peer-vnodes (0 = default 128)")
		checkInterval = fs.Duration("check-interval", 500*time.Millisecond, "health probe period")
		checkTimeout  = fs.Duration("check-timeout", time.Second, "health probe timeout")
		rise          = fs.Int("rise", 2, "consecutive probe successes before an unhealthy backend rejoins")
		fall          = fs.Int("fall", 2, "consecutive probe failures before a backend is failed out")
		retries       = fs.Int("retries", 0, "per-call retries toward one backend (0 = client default 3, negative = none)")
		deadline      = fs.Duration("deadline", 30*time.Second, "default per-request deadline toward backends")
		hedge         = fs.Duration("hedge", 0, "hedge delay for duplicate requests (0 = off)")
		drain         = fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain budget")
	)
	var obs cli.Obs
	obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, logger, err := obs.Setup(ctx, errw)
	if err != nil {
		return err
	}
	defer obs.Close()

	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}
	l, err := newLB(lbConfig{
		Backends:      list,
		VNodes:        *vnodes,
		CheckInterval: *checkInterval,
		CheckTimeout:  *checkTimeout,
		Rise:          *rise,
		Fall:          *fall,
		Retries:       *retries,
		Deadline:      *deadline,
		Hedge:         *hedge,
		Logger:        logger,
	})
	if err != nil {
		return err
	}

	checkCtx, stopChecks := context.WithCancel(context.Background())
	defer stopChecks()
	l.checker.CheckOnce(checkCtx)
	go l.checker.Run(checkCtx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.LogAttrs(ctx, slog.LevelInfo, "listening",
		slog.String("addr", ln.Addr().String()),
		slog.Int("backends", len(list)))

	hs := &http.Server{Handler: l.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	logger.LogAttrs(ctx, slog.LevelInfo, "draining", slog.Duration("budget", *drain))
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		hs.Close()
		if !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	logger.LogAttrs(ctx, slog.LevelInfo, "stopped")
	return nil
}
