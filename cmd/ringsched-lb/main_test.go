package main

import (
	"bufio"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ringsched/internal/service"
)

// startBackends brings up n real ringschedd servers on loopback and
// returns their addresses plus a cleanup-registered shutdown per server.
func startBackends(t *testing.T, n int) (addrs []string, stop []func()) {
	t.Helper()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := service.New(service.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		addrs = append(addrs, ln.Addr().String())
		stopOne := func() {
			hs.Close()
			srv.Close()
		}
		stop = append(stop, stopOne)
		t.Cleanup(stopOne)
	}
	return addrs, stop
}

func newTestLB(t *testing.T, backends []string) *lb {
	t.Helper()
	l, err := newLB(lbConfig{
		Backends:     backends,
		Rise:         1,
		Fall:         1,
		CheckTimeout: 500 * time.Millisecond,
		Retries:      -1, // fail over between backends instead of retrying one
		Deadline:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	l.checker.CheckOnce(t.Context())
	return l
}

// analyzeBodyOwnedBy scans bandwidths until the canonical key's owner on
// the lb's ring is the wanted backend, so routing tests are deterministic.
func analyzeBodyOwnedBy(t *testing.T, l *lb, owner string) string {
	t.Helper()
	for bw := 1; bw < 4096; bw++ {
		body := fmt.Sprintf(`{"bandwidthMbps":%d,"streams":[{"name":"s","periodMs":10,"lengthBits":4096}]}`, bw)
		if key, ok := shardKey("analyze", []byte(body)); ok && l.ring.Owner(key) == owner {
			return body
		}
	}
	t.Fatal("no analyze request owned by", owner)
	return ""
}

func postVia(t *testing.T, l *lb, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	l.Handler().ServeHTTP(rr, req)
	return rr
}

func TestLBRoutesToShardOwner(t *testing.T) {
	addrs, _ := startBackends(t, 3)
	l := newTestLB(t, addrs)

	for _, owner := range addrs {
		body := analyzeBodyOwnedBy(t, l, owner)
		rr := postVia(t, l, "/v1/analyze", body, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("status = %d, body %s", rr.Code, rr.Body)
		}
		if got := rr.Header().Get("X-Ringsched-Backend"); got != owner {
			t.Errorf("request owned by %s served by %s", owner, got)
		}
		// The same request again hits the owner's now-warm cache.
		rr = postVia(t, l, "/v1/analyze", body, nil)
		if xc := rr.Header().Get("X-Cache"); xc != "hit" {
			t.Errorf("second identical request X-Cache = %q, want hit", xc)
		}
	}
}

func TestLBFailsOverWhenOwnerDown(t *testing.T) {
	addrs, stop := startBackends(t, 2)
	l := newTestLB(t, addrs)

	dead := addrs[0]
	body := analyzeBodyOwnedBy(t, l, dead)
	stop[0]()
	l.checker.CheckOnce(t.Context()) // fall=1: one failed probe marks it down

	rr := postVia(t, l, "/v1/analyze", body, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d with one backend down, body %s", rr.Code, rr.Body)
	}
	if got := rr.Header().Get("X-Ringsched-Backend"); got != addrs[1] {
		t.Errorf("served by %q, want surviving backend %q", got, addrs[1])
	}
	metrics := l.metricsSnapshot(t)
	if !strings.Contains(metrics, `ringschedlb_backend_healthy{backend="`+dead+`"} 0`) {
		t.Error("dead backend not reported unhealthy in /metrics")
	}
	if !strings.Contains(metrics, `ringschedlb_routed_total{route="fallback"}`) {
		t.Error("fallback routing decision not counted")
	}
}

// TestLBFailsOverOnServerError exercises failover on a live-but-erroring
// owner: transport-level failures to an unroutable port fall through to
// the next candidate even before the health checker notices.
func TestLBFailsOverOnServerError(t *testing.T) {
	addrs, stop := startBackends(t, 2)
	l := newTestLB(t, addrs)

	dead := addrs[0]
	body := analyzeBodyOwnedBy(t, l, dead)
	stop[0]() // port closed, but checker has NOT been re-run: still "healthy"

	rr := postVia(t, l, "/v1/analyze", body, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, want in-request failover to survivor; body %s", rr.Code, rr.Body)
	}
	if got := rr.Header().Get("X-Ringsched-Backend"); got != addrs[1] {
		t.Errorf("served by %q, want survivor %q", got, addrs[1])
	}
}

func TestLBBadRequestVerbatimNoFailover(t *testing.T) {
	addrs, _ := startBackends(t, 2)
	l := newTestLB(t, addrs)

	rr := postVia(t, l, "/v1/analyze", `{"bandwidthMbps":-5,"streams":[]}`, nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want the backend's 400 passed through; body %s", rr.Code, rr.Body)
	}
	if !strings.Contains(rr.Body.String(), `"code"`) {
		t.Errorf("typed error body lost in proxying: %s", rr.Body)
	}
}

func TestLBTraceAdoptedAndEchoed(t *testing.T) {
	addrs, _ := startBackends(t, 1)
	l := newTestLB(t, addrs)

	const traceID = "00112233445566778899aabbccddeeff"
	body := `{"bandwidthMbps":80,"streams":[{"name":"s","periodMs":10,"lengthBits":4096}]}`
	rr := postVia(t, l, "/v1/analyze", body, map[string]string{"X-Ringsched-Trace": traceID})
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if got := rr.Header().Get("X-Ringsched-Trace"); got != traceID {
		t.Errorf("lb trace header = %q, want adopted %q", got, traceID)
	}
	// The backend must have seen the same trace: its span ring indexes it.
	resp, err := http.Get("http://" + addrs[0] + "/debug/traces?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dump, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(dump), traceID) {
		t.Errorf("backend has no spans for trace %s: %s", traceID, dump)
	}
}

func TestLBHealthzReflectsBackends(t *testing.T) {
	addrs, stop := startBackends(t, 1)
	l := newTestLB(t, addrs)

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rr := httptest.NewRecorder()
	l.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz = %d with healthy backend", rr.Code)
	}

	stop[0]()
	l.checker.CheckOnce(t.Context())
	rr = httptest.NewRecorder()
	l.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz = %d with all backends down, want 503", rr.Code)
	}
}

func TestLBStreamsSSE(t *testing.T) {
	addrs, _ := startBackends(t, 1)
	l := newTestLB(t, addrs)

	// Drive the real mux over a live listener: SSE needs a streaming
	// response writer, which httptest.NewRecorder can't interrupt.
	ts := httptest.NewServer(l.Handler())
	defer ts.Close()

	body := `{"bandwidthsMbps":[10,20,40],"streams":8,"samples":4,"seed":7}`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q, want SSE", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var sawEvent bool
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event:") {
			sawEvent = true
			break
		}
	}
	if !sawEvent {
		t.Error("no SSE events proxied through the lb")
	}
}

func TestLBClientIdentityPassthrough(t *testing.T) {
	var seen string
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		seen = r.Header.Get("X-Ringsched-Client")
		w.Write([]byte(`{}`))
	}))
	defer backend.Close()

	l := newTestLB(t, []string{strings.TrimPrefix(backend.URL, "http://")})
	rr := postVia(t, l, "/v1/experiments", `{}`, map[string]string{"X-Ringsched-Client": "tenant-9"})
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if seen != "tenant-9" {
		t.Errorf("backend saw client %q, want tenant-9 forwarded by lb", seen)
	}
}

// metricsSnapshot scrapes the lb's own /metrics handler.
func (l *lb) metricsSnapshot(t *testing.T) string {
	t.Helper()
	rr := httptest.NewRecorder()
	l.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	return rr.Body.String()
}
