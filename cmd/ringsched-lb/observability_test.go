package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ringsched/internal/promtext"
	"ringsched/internal/trace"
)

// TestLBMetricsConformance runs the lb's full exposition through the
// strict parser/linter and checks the new stage histogram is present.
func TestLBMetricsConformance(t *testing.T) {
	addrs, _ := startBackends(t, 2)
	l := newTestLB(t, addrs)

	body := analyzeBodyOwnedBy(t, l, addrs[0])
	if rr := postVia(t, l, "/v1/analyze", body, nil); rr.Code != http.StatusOK {
		t.Fatalf("analyze via lb: %d %s", rr.Code, rr.Body)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rr := httptest.NewRecorder()
	l.Handler().ServeHTTP(rr, req)
	fams, err := promtext.Parse(rr.Body)
	if err != nil {
		t.Fatalf("lb metrics exposition does not parse: %v", err)
	}
	if errs := promtext.Lint(fams); len(errs) > 0 {
		for _, e := range errs {
			t.Errorf("lint: %v", e)
		}
		t.Fatalf("%d lint violations in lb /metrics", len(errs))
	}
	byName := map[string]promtext.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"ringschedlb_requests_total", "ringschedlb_routed_total",
		"ringschedlb_stage_seconds", "ringschedlb_build_info",
		"ringschedlb_backends", "ringschedlb_backend_healthy",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("family %q missing from lb /metrics", want)
		}
	}
	// One proxied request exercised read, route, and forward.
	forward := 0.0
	for _, s := range byName["ringschedlb_stage_seconds"].Samples {
		if s.Name == "ringschedlb_stage_seconds_count" && s.Labels["stage"] == "forward" {
			forward += s.Value
		}
	}
	if forward < 1 {
		t.Errorf("stage=forward count = %v, want >= 1", forward)
	}
}

// TestLBDebugTracesFederates drives one request through the lb and asks
// the lb's /debug/traces for the merged view: lb spans and the serving
// backend's spans under one trace ID, each member-attributed.
func TestLBDebugTracesFederates(t *testing.T) {
	addrs, _ := startBackends(t, 2)
	l := newTestLB(t, addrs)

	body := analyzeBodyOwnedBy(t, l, addrs[0])
	rr := postVia(t, l, "/v1/analyze", body, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("analyze via lb: %d %s", rr.Code, rr.Body)
	}
	traceID := rr.Header().Get("X-Ringsched-Trace")
	if traceID == "" {
		t.Fatal("no trace ID on lb response")
	}

	req := httptest.NewRequest(http.MethodGet, "/debug/traces?trace="+traceID, nil)
	trr := httptest.NewRecorder()
	l.Handler().ServeHTTP(trr, req)
	if trr.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces: %d %s", trr.Code, trr.Body)
	}
	var resp struct {
		Spans   []trace.Record `json:"spans"`
		Members []struct {
			Member string `json:"member"`
			Spans  int    `json:"spans"`
			Error  string `json:"error,omitempty"`
		} `json:"members"`
	}
	if err := json.Unmarshal(trr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode traces: %v\n%s", err, trr.Body)
	}
	if len(resp.Members) != 3 {
		t.Fatalf("want lb + 2 backends in members, got %+v", resp.Members)
	}
	spansBy := map[string]map[string]bool{} // member -> span names
	for _, s := range resp.Spans {
		if s.TraceID != traceID {
			t.Fatalf("span from foreign trace: %+v", s)
		}
		if spansBy[s.Member] == nil {
			spansBy[s.Member] = map[string]bool{}
		}
		spansBy[s.Member][s.Name] = true
	}
	if !spansBy["ringsched-lb"]["lb.analyze"] || !spansBy["ringsched-lb"]["lb.forward"] {
		t.Fatalf("lb spans missing or unattributed: %v", spansBy)
	}
	served := spansBy[addrs[0]]
	if !served["http.analyze"] {
		t.Fatalf("serving backend's spans missing (got %v)", spansBy)
	}
}
