// Command ringsim runs the operational discrete-event simulator for one of
// the two MAC protocols on a message set and reports deadline misses,
// medium occupancy, and token rotation statistics.
//
// Every run ends with a token-stats block comparing the observed mean
// rotation time against the model's walk time WT = Θ (and TTRT for fddi).
// -trace-out additionally writes the run's spans, the sampled protocol
// events (token passes, reservations, late counters, recoveries), and the
// machine-readable summary as JSON lines.
//
// Usage:
//
//	ringsim -protocol fddi -bw 100 -utilization 0.5
//	ringsim -protocol 8025 -bw 4 -set set.json -phasing random -seed 3
//	ringsim -protocol 8025mod -bw 16 -n 20 -horizon 5s -async=false
//	ringsim -protocol fddi -trace 40          # log the first 40 events
//	ringsim -protocol fddi -trace-out run.jsonl -stats-every 16
//	ringsim -protocol fddi -rotation-hist 8   # token-rotation histogram
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"strings"
	"time"

	"ringsched"
	"ringsched/internal/cli"
	"ringsched/internal/message"
	"ringsched/internal/progress"
)

func main() {
	cli.Main("ringsim", run)
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ringsim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		protocol    = fs.String("protocol", "fddi", "protocol: 8025, 8025mod, 8025res (faithful reservation MAC) or fddi")
		topoSpec    = fs.String("topology", "", "bridged topology spec (ring:…+bridge:…+flow:…); simulates the whole ring-of-rings instead of one ring")
		bwMbps      = fs.Float64("bw", 100, "network bandwidth in Mbps")
		setPath     = fs.String("set", "", "JSON message set (default: random paper workload)")
		preset      = fs.String("preset", "", "built-in workload preset (see schedcheck -preset)")
		streams     = fs.Int("n", 20, "streams when generating a random set")
		seed        = fs.Int64("seed", 1, "seed for random set and phasing")
		utilization = fs.Float64("utilization", 0.3, "target utilization for the generated set")
		phasing     = fs.String("phasing", "sync", "arrival phasing: sync or random")
		horizon     = fs.Duration("horizon", 0, "simulated duration (default: 20 max periods)")
		async       = fs.Bool("async", true, "saturated asynchronous background traffic")
		trace       = fs.Int("trace", 0, "log the first N simulator events (0 = off)")
		statsEvery  = fs.Int("stats-every", 1, "keep one raw protocol event in N for -trace-out (statistics always use all)")
		rotHist     = fs.Int("rotation-hist", 0, "print an N-bin token-rotation-time histogram (0 = off)")
		lossProb    = fs.Float64("loss-prob", 0, "token-loss probability per service step")
		levels      = fs.Int("levels", 8, "ring priority levels for -protocol 8025res (0 = one per stream)")
		recovery    = fs.Duration("recovery", 2*time.Millisecond, "ring recovery time per token loss")
		faultSpec   = fs.String("fault-model", "", "fault model spec, e.g. loss:p=1e-3+gilbert:burst=16+crash:rate=0.1 (see internal/faults)")
		scenario    = fs.String("scenario", "", "named fault scenario: clean, noisy-channel, lossy-token, flaky-stations, degraded")
		burstLen    = fs.Float64("burst-len", 0, "override the fault model's mean corruption burst length (frames)")
		crashRate   = fs.Float64("crash-rate", -1, "override the fault model's station crash rate (crashes/s, -1 = keep)")
		timeout     = fs.Duration("timeout", 0, "abort after this wall-clock duration (0 = none)")
		workers     = fs.Int("workers", 0, "cap OS parallelism for the run (0 = all cores)")
		maxEvents   = fs.Int("max-events", 0, "abort after this many simulator events (0 = unlimited)")
		quiet       = fs.Bool("quiet", false, "suppress the live progress meter on stderr")
	)
	var oflags cli.Obs
	oflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	cli.ApplyWorkers(*workers)
	ctx, logger, err := oflags.Setup(ctx, errw)
	if err != nil {
		return err
	}
	defer oflags.Close()

	var meter *progress.Meter
	var obs ringsched.Progress
	if !*quiet {
		meter = progress.NewMeter(errw, 0)
		defer meter.Close()
		obs = meter
	}

	if *topoSpec != "" {
		topo, terr := ringsched.ParseTopology(*topoSpec)
		if terr != nil {
			return terr
		}
		res, terr := ringsched.TopologySimulation{
			Topology:       topo,
			AsyncSaturated: *async,
			Horizon:        horizon.Seconds(),
			MaxEvents:      *maxEvents,
			Progress:       obs,
		}.RunContext(ctx)
		if meter != nil {
			meter.Close()
		}
		if terr != nil {
			return terr
		}
		printTopologyResult(out, res)
		return nil
	}

	bw := ringsched.Mbps(*bwMbps)
	rng := rand.New(rand.NewSource(*seed))

	set, stations, err := loadSet(*setPath, *preset, *streams, *utilization, bw, rng)
	if err != nil {
		return err
	}
	logger.LogAttrs(ctx, slog.LevelDebug, "workload loaded",
		slog.Int("streams", len(set)), slog.Int("stations", stations),
		slog.Float64("bandwidthMbps", *bwMbps))

	ph := ringsched.PhasingSynchronized
	if *phasing == "random" {
		ph = ringsched.PhasingRandom
	}

	// The stats collector always rides along; -trace only adds the text log.
	stats := &ringsched.TokenStatsCollector{SampleEvery: *statsEvery}
	var tracer ringsched.Tracer = stats
	if *trace > 0 {
		fmt.Fprintf(out, "--- first %d events ---\n", *trace)
		tracer = ringsched.MultiTracer(stats, &ringsched.WriterTracer{W: out, Limit: *trace})
	}

	faults, err := buildFaults(*faultSpec, *scenario, *lossProb, *recovery, *burstLen, *crashRate, *seed)
	if err != nil {
		return err
	}

	var res ringsched.SimResult
	var walkTime, ttrt float64 // model WT = Θ, and TTRT for fddi
	switch *protocol {
	case "8025", "8025mod":
		pdp := ringsched.NewStandardPDP(bw)
		if *protocol == "8025mod" {
			pdp.Variant = ringsched.Modified8025
		}
		pdp.Net = pdp.Net.WithStations(stations)
		walkTime = pdp.Net.Theta()
		w, werr := ringsched.NewWorkload(set, stations, ph, rng)
		if werr != nil {
			return werr
		}
		res, err = ringsched.PDPSimulation{
			Net:            pdp.Net,
			Frame:          pdp.Frame,
			Variant:        pdp.Variant,
			Workload:       w,
			AsyncSaturated: *async,
			Horizon:        horizon.Seconds(),
			Tracer:         tracer,
			Faults:         faults,
			MaxEvents:      *maxEvents,
			Progress:       obs,
		}.RunContext(ctx)
	case "8025res":
		pdp := ringsched.NewStandardPDP(bw)
		pdp.Net = pdp.Net.WithStations(stations)
		walkTime = pdp.Net.Theta()
		w, werr := ringsched.NewWorkload(set, stations, ph, rng)
		if werr != nil {
			return werr
		}
		var rres ringsched.ReservationResult
		rres, err = ringsched.ReservationSimulation{
			Net:            pdp.Net,
			Frame:          pdp.Frame,
			Workload:       w,
			PriorityLevels: *levels,
			AsyncSaturated: *async,
			Horizon:        horizon.Seconds(),
			Tracer:         tracer,
			Faults:         faults,
			MaxEvents:      *maxEvents,
			Progress:       obs,
		}.RunContext(ctx)
		if err != nil {
			return err
		}
		res = rres.Result
		fmt.Fprintf(out, "priority inversions: %d\n", rres.PriorityInversions)
	case "fddi":
		ttp := ringsched.NewTTP(bw)
		ttp.Net = ttp.Net.WithStations(stations)
		walkTime = ttp.Net.Theta()
		w, werr := ringsched.NewWorkload(set, stations, ph, rng)
		if werr != nil {
			return werr
		}
		var simc ringsched.TTPSimulation
		simc, err = ringsched.NewTTPSimulation(ttp, set, w)
		if err != nil {
			return err
		}
		ttrt = simc.TTRT
		simc.AsyncSaturated = *async
		simc.Horizon = horizon.Seconds()
		simc.Tracer = tracer
		simc.Faults = faults
		simc.MaxEvents = *maxEvents
		simc.Progress = obs
		res, err = simc.RunContext(ctx)
	default:
		return fmt.Errorf("unknown -protocol %q (want 8025, 8025mod, 8025res or fddi)", *protocol)
	}
	if meter != nil {
		meter.Close()
	}
	if err != nil {
		return err
	}

	if *trace > 0 {
		fmt.Fprintln(out, "---")
	}
	printResult(out, res)
	sum := stats.Summary()
	fmt.Fprintf(out, "\n%s", sum.Format(walkTime, ttrt))
	if *rotHist > 0 {
		if h, herr := stats.RotationHistogram(*rotHist); herr != nil {
			fmt.Fprintf(out, "rotation histogram: %v\n", herr)
		} else {
			h.Min *= 1e3 // render bin edges in ms
			h.Max *= 1e3
			fmt.Fprintf(out, "\ntoken rotation histogram (ms):\n%s", h.Render(40))
		}
	}
	if err := writeTokenTrace(oflags.TraceWriter(), stats, sum, walkTime, ttrt); err != nil {
		return err
	}
	return nil
}

// writeTokenTrace appends the sampled protocol events and the final
// token-stats summary to the -trace-out stream as JSON lines, alongside
// whatever spans the run exported. w is nil when -trace-out is off.
func writeTokenTrace(w io.Writer, stats *ringsched.TokenStatsCollector, sum ringsched.TokenStats, walkTime, ttrt float64) error {
	if w == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range stats.Events() {
		if err := enc.Encode(map[string]any{
			"event":       e.Kind.String(),
			"timeSec":     e.Time,
			"station":     e.Station,
			"durationSec": e.Duration,
			"detail":      e.Detail,
		}); err != nil {
			return err
		}
	}
	return enc.Encode(map[string]any{
		"tokenStats":  sum,
		"walkTimeSec": walkTime,
		"ttrtSec":     ttrt,
	})
}

// buildFaults assembles the injected fault model from the scenario/spec
// flags (mutually exclusive), the legacy -loss-prob/-recovery pair, and the
// -burst-len/-crash-rate overrides. Returns nil when nothing is configured.
func buildFaults(spec, scenario string, lossProb float64, recovery time.Duration, burstLen, crashRate float64, seed int64) (*ringsched.FaultModel, error) {
	if spec != "" && scenario != "" {
		return nil, fmt.Errorf("-fault-model and -scenario are mutually exclusive")
	}
	var model ringsched.FaultModel
	switch {
	case spec != "":
		m, err := ringsched.ParseFaultModel(spec)
		if err != nil {
			return nil, err
		}
		model = m
	case scenario != "":
		sc, err := ringsched.FaultScenarioByName(scenario)
		if err != nil {
			return nil, err
		}
		model = sc.Model
	case lossProb > 0:
		model = ringsched.FaultModel{
			TokenLossProb: lossProb,
			Recovery:      ringsched.FaultRecovery{Fixed: recovery.Seconds()},
		}
	}
	if burstLen > 0 {
		if model.Channel.Kind == ringsched.ChannelClean {
			model.Channel = ringsched.FaultChannel{
				Kind: ringsched.ChannelGilbertElliott, BurstCorruptProb: 0.5, MeanGap: 1000,
			}
		}
		model.Channel.MeanBurst = burstLen
	}
	if crashRate >= 0 {
		model.Crash.Rate = crashRate
		if crashRate > 0 && model.Crash.MeanDowntime == 0 {
			model.Crash.MeanDowntime = 50e-3
			model.Crash.Bypass = 2e-3
		}
	}
	if !model.Active() {
		return nil, nil
	}
	model.Seed = seed
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &model, nil
}

func loadSet(path, preset string, streams int, utilization, bw float64, rng *rand.Rand) (ringsched.MessageSet, int, error) {
	if preset != "" {
		p, err := ringsched.PresetByName(preset)
		if err != nil {
			return nil, 0, err
		}
		return p.Set, len(p.Set), nil
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		set, err := message.ReadJSON(f)
		if err != nil {
			return nil, 0, err
		}
		return set, len(set), nil
	}
	gen := ringsched.PaperGenerator()
	gen.Streams = streams
	drawn, err := gen.Draw(rng)
	if err != nil {
		return nil, 0, err
	}
	set, err := drawn.ScaleToUtilization(utilization, bw)
	if err != nil {
		return nil, 0, err
	}
	return set, streams, nil
}

// printTopologyResult renders a multi-ring run: per-ring occupancy and
// misses, bridge forwarding statistics, and per-flow end-to-end response
// times.
func printTopologyResult(out io.Writer, res ringsched.TopologySimResult) {
	fmt.Fprintf(out, "topology:          %d rings, %d bridge directions, %d flows\n",
		len(res.Rings), len(res.Bridges), len(res.Flows))
	fmt.Fprintf(out, "horizon:           %v\n", time.Duration(res.Horizon*float64(time.Second)))
	fmt.Fprintf(out, "deadline misses:   %d\n", res.DeadlineMisses)
	fmt.Fprintf(out, "bridge drops:      %d\n", res.Drops)
	for _, r := range res.Rings {
		fmt.Fprintf(out, "\nring %s (%s): misses=%d  occupancy sync %.4f async %.4f token %.4f idle %.4f\n",
			r.Name, r.Result.Protocol, r.Result.DeadlineMisses,
			r.Result.SyncTime/res.Horizon, r.Result.AsyncTime/res.Horizon,
			r.Result.TokenTime/res.Horizon, r.Result.IdleTime/res.Horizon)
	}
	if len(res.Bridges) > 0 {
		fmt.Fprintf(out, "\n%-10s %12s %8s %8s %14s %12s\n",
			"bridge", "rate(Mbps)", "fwd", "dropped", "maxBacklog(b)", "busy(ms)")
		for _, b := range res.Bridges {
			fmt.Fprintf(out, "%-10s %12.3f %8d %8d %14.0f %12.4f\n",
				b.From+"->"+b.To, b.RateBPS/1e6, b.Forwarded, b.Dropped,
				b.MaxBacklogBits, b.BusyTime*1e3)
		}
	}
	fmt.Fprintf(out, "\n%-12s %-12s %8s %8s %8s %14s %14s\n",
		"flow", "path", "done", "missed", "dropped", "meanResp(ms)", "maxResp(ms)")
	for _, f := range res.Flows {
		fmt.Fprintf(out, "%-12s %-12s %8d %8d %8d %14.4f %14.4f\n",
			f.Flow.Name, strings.Join(f.Path, ">"), f.Completed, f.Missed, f.Dropped,
			f.MeanResponse*1e3, f.MaxResponse*1e3)
	}
}

func printResult(out io.Writer, res ringsched.SimResult) {
	fmt.Fprintf(out, "protocol:          %s\n", res.Protocol)
	fmt.Fprintf(out, "horizon:           %v\n", time.Duration(res.Horizon*float64(time.Second)))
	fmt.Fprintf(out, "deadline misses:   %d\n", res.DeadlineMisses)
	fmt.Fprintf(out, "medium occupancy:  sync %.4f  async %.4f  token %.4f  idle %.4f\n",
		res.SyncTime/res.Horizon, res.AsyncTime/res.Horizon,
		res.TokenTime/res.Horizon, res.IdleTime/res.Horizon)
	if res.RotationN > 0 {
		fmt.Fprintf(out, "token rotation:    mean %.4gms  max %.4gms  (n=%d)\n",
			res.RotationMean*1e3, res.RotationMax*1e3, res.RotationN)
	}
	if res.TokenLosses > 0 || res.RecoveryTime > 0 {
		fmt.Fprintf(out, "token losses:      %d (recovery %.4gms total)\n",
			res.TokenLosses, res.RecoveryTime*1e3)
	}
	if res.CorruptedFrames > 0 {
		fmt.Fprintf(out, "corrupted frames:  %d\n", res.CorruptedFrames)
	}
	if res.Crashes > 0 {
		fmt.Fprintf(out, "station crashes:   %d\n", res.Crashes)
	}
	fmt.Fprintf(out, "\n%4s %12s %10s %8s %8s %14s %14s\n",
		"stn", "period(ms)", "done", "missed", "backlog", "meanResp(ms)", "maxResp(ms)")
	for _, s := range res.Stations {
		fmt.Fprintf(out, "%4d %12.3f %10d %8d %8d %14.4f %14.4f\n",
			s.Station, s.Stream.Period*1e3, s.Completed, s.Missed, s.Backlogged,
			s.MeanResponse*1e3, s.MaxResponse*1e3)
	}
}
