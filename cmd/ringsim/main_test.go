package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFDDISim(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-protocol", "fddi", "-bw", "100", "-n", "6",
		"-utilization", "0.3", "-horizon", "100ms"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"protocol:          FDDI", "deadline misses:", "token rotation:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestReservationMAC(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-protocol", "8025res", "-bw", "4", "-n", "5",
		"-utilization", "0.2", "-horizon", "200ms", "-levels", "2"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "reservation MAC") || !strings.Contains(got, "priority inversions:") {
		t.Errorf("reservation output missing markers:\n%s", got)
	}
}

func TestFaultFlags(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-protocol", "fddi", "-bw", "100", "-n", "4",
		"-utilization", "0.2", "-horizon", "200ms", "-loss-prob", "0.01", "-recovery", "1ms"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "token losses:") {
		t.Errorf("loss report missing:\n%s", out.String())
	}
}

func TestPDPSimVariants(t *testing.T) {
	for _, proto := range []string{"8025", "8025mod"} {
		var out bytes.Buffer
		err := run(context.Background(), []string{"-protocol", proto, "-bw", "16", "-n", "5",
			"-utilization", "0.2", "-horizon", "200ms"}, &out, io.Discard)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if !strings.Contains(out.String(), "802.5") {
			t.Errorf("%s: protocol line missing:\n%s", proto, out.String())
		}
	}
}

func TestTraceFlag(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-protocol", "fddi", "-bw", "100", "-n", "4",
		"-utilization", "0.2", "-horizon", "50ms", "-trace", "5"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "--- first 5 events ---") {
		t.Errorf("trace header missing:\n%s", got)
	}
	if !strings.Contains(got, "arrival") && !strings.Contains(got, "frame") {
		t.Errorf("no traced events:\n%s", got)
	}
}

func TestRandomPhasing(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-protocol", "fddi", "-bw", "100", "-n", "4",
		"-utilization", "0.2", "-horizon", "50ms", "-phasing", "random", "-seed", "5"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

// TestTraceOutTokenStats is the PR acceptance check: a clean fddi run with
// -trace-out must print the token-stats verdict on stdout and append JSON
// lines whose final record carries a summary with mean rotation above the
// model's walk time WT.
func TestTraceOutTokenStats(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "run.jsonl")
	var out bytes.Buffer
	err := run(context.Background(), []string{"-protocol", "fddi", "-bw", "100", "-n", "6",
		"-utilization", "0.3", "-horizon", "100ms", "-trace-out", tracePath, "-stats-every", "4"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"token stats:", "OK (rotation ≥ WT)", "OK (mean ≤ TTRT)"} {
		if !strings.Contains(got, want) {
			t.Errorf("stdout missing %q:\n%s", want, got)
		}
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace file has %d lines, want sampled events plus a summary", len(lines))
	}
	var final struct {
		TokenStats *struct {
			Rotations       int     `json:"rotations"`
			RotationMeanSec float64 `json:"rotationMeanSec"`
		} `json:"tokenStats"`
		WalkTimeSec float64 `json:"walkTimeSec"`
		TTRTSec     float64 `json:"ttrtSec"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatalf("final trace line: %v\n%s", err, lines[len(lines)-1])
	}
	if final.TokenStats == nil {
		t.Fatalf("final trace line has no tokenStats:\n%s", lines[len(lines)-1])
	}
	if final.TokenStats.Rotations == 0 {
		t.Fatal("no token rotations recorded")
	}
	if final.WalkTimeSec <= 0 {
		t.Fatalf("walkTimeSec = %g, want > 0", final.WalkTimeSec)
	}
	if final.TokenStats.RotationMeanSec <= final.WalkTimeSec {
		t.Errorf("mean rotation %g ≤ walk time %g; token must take at least one full walk per rotation",
			final.TokenStats.RotationMeanSec, final.WalkTimeSec)
	}
	// The earlier lines are sampled protocol events, each a JSON object
	// with an event kind; token passes must be among them.
	sawToken := false
	for _, line := range lines[:len(lines)-1] {
		var ev struct {
			Event   string  `json:"event"`
			TimeSec float64 `json:"timeSec"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue // span records share the stream
		}
		if ev.Event == "token" {
			sawToken = true
			break
		}
	}
	if !sawToken {
		t.Error("no sampled token-pass events in the trace file")
	}
}

func TestUnknownProtocol(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-protocol", "csma"}, &out, io.Discard); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestMissingSetFile(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-set", "/no/such/file"}, &out, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTopologySim(t *testing.T) {
	const spec = "ring:name=a,proto=8025mod,bw=16e6 + ring:name=b,proto=fddi,bw=100e6" +
		" + bridge:a=a,b=b,latency=100us" +
		" + flow:name=cross,src=a,dst=b,period=100ms,bits=4096" +
		" + flow:name=local,src=b,period=20ms,bits=1024"
	var out bytes.Buffer
	err := run(context.Background(), []string{"-topology", spec, "-horizon", "500ms", "-quiet"},
		&out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"topology:          2 rings", "ring a (Modified 802.5)", "ring b (FDDI)",
		"a->b", "cross", "a>b", "deadline misses:   0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	if err := run(context.Background(), []string{"-topology", "ring:name=", "-quiet"},
		&out, io.Discard); err == nil {
		t.Error("bad topology spec accepted")
	}
}
