package main

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

func TestFDDISim(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-protocol", "fddi", "-bw", "100", "-n", "6",
		"-utilization", "0.3", "-horizon", "100ms"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"protocol:          FDDI", "deadline misses:", "token rotation:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestReservationMAC(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-protocol", "8025res", "-bw", "4", "-n", "5",
		"-utilization", "0.2", "-horizon", "200ms", "-levels", "2"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "reservation MAC") || !strings.Contains(got, "priority inversions:") {
		t.Errorf("reservation output missing markers:\n%s", got)
	}
}

func TestFaultFlags(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-protocol", "fddi", "-bw", "100", "-n", "4",
		"-utilization", "0.2", "-horizon", "200ms", "-loss-prob", "0.01", "-recovery", "1ms"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "token losses:") {
		t.Errorf("loss report missing:\n%s", out.String())
	}
}

func TestPDPSimVariants(t *testing.T) {
	for _, proto := range []string{"8025", "8025mod"} {
		var out bytes.Buffer
		err := run(context.Background(), []string{"-protocol", proto, "-bw", "16", "-n", "5",
			"-utilization", "0.2", "-horizon", "200ms"}, &out, io.Discard)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if !strings.Contains(out.String(), "802.5") {
			t.Errorf("%s: protocol line missing:\n%s", proto, out.String())
		}
	}
}

func TestTraceFlag(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-protocol", "fddi", "-bw", "100", "-n", "4",
		"-utilization", "0.2", "-horizon", "50ms", "-trace", "5"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "--- first 5 events ---") {
		t.Errorf("trace header missing:\n%s", got)
	}
	if !strings.Contains(got, "arrival") && !strings.Contains(got, "frame") {
		t.Errorf("no traced events:\n%s", got)
	}
}

func TestRandomPhasing(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-protocol", "fddi", "-bw", "100", "-n", "4",
		"-utilization", "0.2", "-horizon", "50ms", "-phasing", "random", "-seed", "5"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownProtocol(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-protocol", "csma"}, &out, io.Discard); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestMissingSetFile(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-set", "/no/such/file"}, &out, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
}
