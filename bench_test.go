// Benchmark harness: one benchmark per table/figure/claim of the paper
// (see DESIGN.md's experiment index). Each Benchmark*Experiment runs the
// corresponding registered experiment and reports its headline numbers as
// benchmark metrics, so `go test -bench=.` regenerates the evaluation:
//
//	BenchmarkFig1Experiment          reports crossover_bw_mbps, peaks, ...
//	BenchmarkClaim*/Benchmark*       report their acceptance values
//
// Micro-benchmarks for the analysis and simulation kernels follow; they
// track the cost of a single schedulability test, saturation search, and
// simulated second per protocol.
package ringsched_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"ringsched"
)

// benchConfig keeps experiment regeneration affordable inside a benchmark
// iteration while preserving the paper's shapes.
func benchConfig() ringsched.ExperimentConfig {
	return ringsched.ExperimentConfig{Samples: 40, Seed: 1993, PointsPerDecade: 3}
}

// runExperiment runs one registered experiment per benchmark iteration and
// publishes its headline values as metrics.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := ringsched.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last ringsched.ExperimentReport
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(context.Background(), benchConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	for k, v := range last.Values {
		b.ReportMetric(v, k)
	}
	if !last.Pass {
		b.Fatalf("%s did not reproduce the paper's claim: %v", id, last.Notes)
	}
}

// BenchmarkFig1Experiment regenerates Figure 1 (all three protocols over
// the 1 Mbps – 1 Gbps sweep) and reports Monte Carlo throughput as
// samples/s — the figure-of-merit the benchmark-regression gate tracks.
func BenchmarkFig1Experiment(b *testing.B) {
	cfg := benchConfig()
	samplesPerRun := 3 * len(ringsched.PaperBandwidths(cfg.PointsPerDecade)) * cfg.Samples
	runExperiment(b, "FIG1")
	b.ReportMetric(float64(samplesPerRun*b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkClaimLowBandwidth regenerates the 1–10 Mbps comparison rows.
func BenchmarkClaimLowBandwidth(b *testing.B) { runExperiment(b, "CLAIM-LOWBW") }

// BenchmarkClaimHighBandwidth regenerates the ≥100 Mbps comparison rows.
func BenchmarkClaimHighBandwidth(b *testing.B) { runExperiment(b, "CLAIM-HIGHBW") }

// BenchmarkClaimModifiedDominates regenerates the modified-vs-standard
// 802.5 sweep.
func BenchmarkClaimModifiedDominates(b *testing.B) { runExperiment(b, "CLAIM-MOD") }

// BenchmarkTTRTSensitivity regenerates the TTRT selection scan and the
// √(θ·P) optimality check.
func BenchmarkTTRTSensitivity(b *testing.B) { runExperiment(b, "CLAIM-TTRT") }

// BenchmarkMinimumBreakdownTTP regenerates the ≈33 % worst-case bound.
func BenchmarkMinimumBreakdownTTP(b *testing.B) { runExperiment(b, "CLAIM-33PCT") }

// BenchmarkIdealRMBreakdown regenerates the ≈88 % ideal-RM baseline.
func BenchmarkIdealRMBreakdown(b *testing.B) { runExperiment(b, "BASE-RM88") }

// BenchmarkAblationPeriods regenerates the period-distribution ablation.
func BenchmarkAblationPeriods(b *testing.B) { runExperiment(b, "ABL-PERIOD") }

// BenchmarkAblationFrameSize regenerates the frame-size ablation.
func BenchmarkAblationFrameSize(b *testing.B) { runExperiment(b, "ABL-FRAME") }

// BenchmarkAblationStations regenerates the station-count ablation.
func BenchmarkAblationStations(b *testing.B) { runExperiment(b, "ABL-N") }

// BenchmarkAllocationSchemes regenerates the allocation-scheme comparison.
func BenchmarkAllocationSchemes(b *testing.B) { runExperiment(b, "ABL-ALLOC") }

// BenchmarkSimValidation regenerates the analysis-vs-simulation check.
func BenchmarkSimValidation(b *testing.B) { runExperiment(b, "VAL-SIM") }

// BenchmarkFaultTolerance regenerates the token-loss survivability table.
func BenchmarkFaultTolerance(b *testing.B) { runExperiment(b, "EXT-FAULT") }

// BenchmarkPriorityLevels regenerates the ring-priority-granularity table.
func BenchmarkPriorityLevels(b *testing.B) { runExperiment(b, "EXT-PRIO") }

// BenchmarkPhasingSensitivity regenerates the critical-instant-pessimism
// comparison.
func BenchmarkPhasingSensitivity(b *testing.B) { runExperiment(b, "EXT-PHASE") }

// benchSweep measures one multi-point breakdown sweep at a given worker
// budget; comparing BenchmarkSweepWorkers1 against BenchmarkSweepWorkersMax
// shows the wall-clock gain from the parallel sweep (the results themselves
// are identical at any worker count).
func benchSweep(b *testing.B, workers int) {
	b.Helper()
	est := ringsched.PaperEstimator(20, 1993)
	est.Workers = workers
	bws := []float64{1e6, 4e6, 16e6, 64e6, 256e6, 1e9}
	factory := func(bw float64) ringsched.Analyzer { return ringsched.NewTTP(bw) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.SweepContext(context.Background(), "FDDI", factory, bws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepWorkers1 runs the sweep on a single worker.
func BenchmarkSweepWorkers1(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepWorkersMax runs the same sweep on every core.
func BenchmarkSweepWorkersMax(b *testing.B) { benchSweep(b, runtime.GOMAXPROCS(0)) }

// --- Micro-benchmarks of the analysis kernels -------------------------

func benchSet(n int, seed int64) ringsched.MessageSet {
	gen := ringsched.PaperGenerator()
	gen.Streams = n
	set, err := gen.Draw(rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}
	return set
}

// BenchmarkTheorem41 measures one exact PDP schedulability test for the
// paper's 100-stream workload.
func BenchmarkTheorem41(b *testing.B) {
	set, err := benchSet(100, 1).ScaleToUtilization(0.4, 16e6)
	if err != nil {
		b.Fatal(err)
	}
	a := ringsched.NewModifiedPDP(16e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Schedulable(set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem51 measures one exact TTP schedulability test.
func BenchmarkTheorem51(b *testing.B) {
	set, err := benchSet(100, 1).ScaleToUtilization(0.4, 100e6)
	if err != nil {
		b.Fatal(err)
	}
	a := ringsched.NewTTP(100e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Schedulable(set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSaturate measures one full saturation binary search (the inner
// loop of every Monte Carlo sample).
func BenchmarkSaturate(b *testing.B) {
	set := benchSet(100, 1)
	a := ringsched.NewTTP(100e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ringsched.Saturate(set, a, 100e6, ringsched.SaturateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPDPSimSecond measures simulating one second of a loaded
// 20-station modified-802.5 ring.
func BenchmarkPDPSimSecond(b *testing.B) {
	set, err := benchSet(20, 2).ScaleToUtilization(0.3, 16e6)
	if err != nil {
		b.Fatal(err)
	}
	pdp := ringsched.NewModifiedPDP(16e6)
	pdp.Net = pdp.Net.WithStations(20)
	w, err := ringsched.NewWorkload(set, 20, ringsched.PhasingSynchronized, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := (ringsched.PDPSimulation{
			Net: pdp.Net, Frame: pdp.Frame, Variant: ringsched.Modified8025,
			Workload: w, AsyncSaturated: true, Horizon: 1,
		}).Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Horizon != 1 {
			b.Fatal("bad horizon")
		}
	}
}

// BenchmarkTTPSimSecond measures simulating one second of a loaded
// 20-station FDDI ring.
func BenchmarkTTPSimSecond(b *testing.B) {
	set, err := benchSet(20, 2).ScaleToUtilization(0.4, 100e6)
	if err != nil {
		b.Fatal(err)
	}
	ttp := ringsched.NewTTP(100e6)
	ttp.Net = ttp.Net.WithStations(20)
	w, err := ringsched.NewWorkload(set, 20, ringsched.PhasingSynchronized, nil)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := ringsched.NewTTPSimulation(ttp, set, w)
	if err != nil {
		b.Fatal(err)
	}
	sim.AsyncSaturated = true
	sim.Horizon = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReservationSimSecond measures simulating one second of the
// faithful 802.5 reservation MAC on a loaded 20-station ring.
func BenchmarkReservationSimSecond(b *testing.B) {
	set, err := benchSet(20, 2).ScaleToUtilization(0.3, 16e6)
	if err != nil {
		b.Fatal(err)
	}
	pdp := ringsched.NewStandardPDP(16e6)
	pdp.Net = pdp.Net.WithStations(20)
	w, err := ringsched.NewWorkload(set, 20, ringsched.PhasingSynchronized, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (ringsched.ReservationSimulation{
			Net: pdp.Net, Frame: pdp.Frame, Workload: w,
			PriorityLevels: 8, AsyncSaturated: true, Horizon: 1,
		}).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratorDraw measures drawing one 100-stream random workload.
func BenchmarkGeneratorDraw(b *testing.B) {
	gen := ringsched.PaperGenerator()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Draw(rng); err != nil {
			b.Fatal(err)
		}
	}
}
