module ringsched

go 1.22
