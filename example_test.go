package ringsched_test

import (
	"fmt"

	"ringsched"
)

// Example demonstrates the one-call schedulability check under all three
// protocols of the paper.
func Example() {
	const bw = 16e6 // 16 Mbps ring

	set := ringsched.MessageSet{
		{Name: "control", Period: 10e-3, LengthBits: 8_192},
		{Name: "telemetry", Period: 40e-3, LengthBits: 65_536},
		{Name: "bulk", Period: 200e-3, LengthBits: 262_144},
	}

	for _, a := range []ringsched.Analyzer{
		ringsched.NewModifiedPDP(bw),
		ringsched.NewStandardPDP(bw),
		ringsched.NewTTP(bw),
	} {
		ok, err := a.Schedulable(set)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s: %v\n", a.Name(), ok)
	}
	// Output:
	// Modified 802.5: true
	// IEEE 802.5: true
	// FDDI: true
}

// ExampleTTPAnalyzer_Report shows the Theorem 5.1 allocation detail: the
// negotiated TTRT and each station's synchronous bandwidth h_i.
func ExampleTTPAnalyzer_Report() {
	ttp := ringsched.NewTTP(100e6)
	set := ringsched.MessageSet{
		{Name: "sensors", Period: 20e-3, LengthBits: 100_000},
		{Name: "video", Period: 40e-3, LengthBits: 400_000},
	}
	rep, err := ttp.Report(set)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("guaranteed: %v\n", rep.Schedulable)
	fmt.Printf("TTRT: %.3f ms\n", rep.TTRT*1e3)
	for _, s := range rep.Streams {
		fmt.Printf("%s: h=%.1f us over %d visits\n", s.Stream.Name, s.Allocation*1e6, s.Q-1)
	}
	// Output:
	// guaranteed: true
	// TTRT: 1.591 ms
	// sensors: h=92.0 us over 11 visits
	// video: h=167.8 us over 24 visits
}

// ExampleSaturate drives a message set to its breakdown load — the
// utilization at which it is exactly schedulable (the paper's comparison
// metric, per set).
func ExampleSaturate() {
	const bw = 100e6
	set := ringsched.MessageSet{
		{Name: "a", Period: 20e-3, LengthBits: 100_000},
		{Name: "b", Period: 50e-3, LengthBits: 400_000},
	}
	sat, err := ringsched.Saturate(set, ringsched.NewTTP(bw), bw, ringsched.SaturateOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("feasible: %v\n", sat.Feasible)
	fmt.Printf("breakdown utilization: %.2f\n", sat.Utilization)
	// Output:
	// feasible: true
	// breakdown utilization: 0.85
}

// ExampleLiuLaylandBound prints the classical sufficient bound for small
// task counts.
func ExampleLiuLaylandBound() {
	for _, n := range []int{1, 2, 3} {
		fmt.Printf("n=%d: %.4f\n", n, ringsched.LiuLaylandBound(n))
	}
	// Output:
	// n=1: 1.0000
	// n=2: 0.8284
	// n=3: 0.7798
}
