package ringsched_test

import (
	"fmt"
	"strings"

	"ringsched"
)

// Example demonstrates the one-call schedulability check under all three
// protocols of the paper.
func Example() {
	const bw = 16e6 // 16 Mbps ring

	set := ringsched.MessageSet{
		{Name: "control", Period: 10e-3, LengthBits: 8_192},
		{Name: "telemetry", Period: 40e-3, LengthBits: 65_536},
		{Name: "bulk", Period: 200e-3, LengthBits: 262_144},
	}

	for _, a := range []ringsched.Analyzer{
		ringsched.NewModifiedPDP(bw),
		ringsched.NewStandardPDP(bw),
		ringsched.NewTTP(bw),
	} {
		ok, err := a.Schedulable(set)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s: %v\n", a.Name(), ok)
	}
	// Output:
	// Modified 802.5: true
	// IEEE 802.5: true
	// FDDI: true
}

// ExampleTTPAnalyzer_Report shows the Theorem 5.1 allocation detail: the
// negotiated TTRT and each station's synchronous bandwidth h_i.
func ExampleTTPAnalyzer_Report() {
	ttp := ringsched.NewTTP(100e6)
	set := ringsched.MessageSet{
		{Name: "sensors", Period: 20e-3, LengthBits: 100_000},
		{Name: "video", Period: 40e-3, LengthBits: 400_000},
	}
	rep, err := ttp.Report(set)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("guaranteed: %v\n", rep.Schedulable)
	fmt.Printf("TTRT: %.3f ms\n", rep.TTRT*1e3)
	for _, s := range rep.Streams {
		fmt.Printf("%s: h=%.1f us over %d visits\n", s.Stream.Name, s.Allocation*1e6, s.Q-1)
	}
	// Output:
	// guaranteed: true
	// TTRT: 1.591 ms
	// sensors: h=92.0 us over 11 visits
	// video: h=167.8 us over 24 visits
}

// ExampleSaturate drives a message set to its breakdown load — the
// utilization at which it is exactly schedulable (the paper's comparison
// metric, per set).
func ExampleSaturate() {
	const bw = 100e6
	set := ringsched.MessageSet{
		{Name: "a", Period: 20e-3, LengthBits: 100_000},
		{Name: "b", Period: 50e-3, LengthBits: 400_000},
	}
	sat, err := ringsched.Saturate(set, ringsched.NewTTP(bw), bw, ringsched.SaturateOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("feasible: %v\n", sat.Feasible)
	fmt.Printf("breakdown utilization: %.2f\n", sat.Utilization)
	// Output:
	// feasible: true
	// breakdown utilization: 0.85
}

// ExampleLiuLaylandBound prints the classical sufficient bound for small
// task counts.
func ExampleLiuLaylandBound() {
	for _, n := range []int{1, 2, 3} {
		fmt.Printf("n=%d: %.4f\n", n, ringsched.LiuLaylandBound(n))
	}
	// Output:
	// n=1: 1.0000
	// n=2: 0.8284
	// n=3: 0.7798
}

// ExampleAnalyzeTopology analyzes a bridged ring-of-rings — an 802.5 cell
// ring feeding an FDDI backbone through a store-and-forward bridge — and
// prints each ring's verdict plus the cross-flow's end-to-end delay
// bound: the sum of its per-ring response bounds and the bridge's
// network-calculus delay bound.
func ExampleAnalyzeTopology() {
	topo, err := ringsched.ParseTopology(
		"ring:name=cell,proto=8025mod,bw=16e6" +
			" + ring:name=backbone,proto=fddi,bw=100e6" +
			" + bridge:a=cell,b=backbone,latency=100us" +
			" + flow:name=sensor,src=cell,dst=backbone,period=50ms,bits=4096" +
			" + flow:name=audit,src=backbone,period=100ms,bits=16384")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep, err := ringsched.AnalyzeTopology(topo)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, r := range rep.Rings {
		fmt.Printf("ring %s (%s): schedulable=%v\n", r.Name, r.Protocol, r.Schedulable)
	}
	for _, f := range rep.Flows {
		fmt.Printf("flow %s (%s): bound %.2f ms, schedulable=%v\n",
			f.Flow.Name, strings.Join(f.Path, ">"), f.Bound*1e3, f.Schedulable)
	}
	// Output:
	// ring backbone (fddi): schedulable=true
	// ring cell (8025mod): schedulable=true
	// flow audit (backbone): bound 99.62 ms, schedulable=true
	// flow sensor (cell>backbone): bound 26.01 ms, schedulable=true
}
