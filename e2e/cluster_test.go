// Package e2e drives real ringschedd, ringsched-lb, and ringloadgen
// binaries as separate processes: N replicas form a consistent-hash
// cluster, the lb fronts them, and the tests assert the cluster-level
// guarantees no in-process test can — cross-process coalescing, goodput
// scaling with replica count, and survival of a SIGKILLed member.
//
// Capacity stand-in: the test machine may have a single core, so raw
// compute throughput does not scale with replicas here. Instead each
// replica enforces a per-client rate limit (-client-rps), making
// "capacity" a deterministic per-process resource; goodput then scales
// with replica count exactly when shard routing spreads the key space.
package e2e

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

var binDir string

func TestMain(m *testing.M) {
	var err error
	binDir, err = os.MkdirTemp("", "ringsched-e2e-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(binDir)
	for _, cmd := range []string{"ringschedd", "ringsched-lb", "ringloadgen", "ringadmit"} {
		build := exec.Command("go", "build", "-o", filepath.Join(binDir, cmd), "./cmd/"+cmd)
		build.Dir = ".."
		if out, err := build.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", cmd, err, out)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

// freeAddrs reserves n distinct loopback ports and releases them, so
// cluster members can know each other's addresses before any start.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

type proc struct {
	cmd *exec.Cmd
	log *os.File
}

func startProc(t *testing.T, name string, args ...string) *proc {
	t.Helper()
	logf, err := os.CreateTemp(t.TempDir(), name+"-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, log: logf}
	t.Cleanup(func() {
		p.kill()
		logf.Close()
	})
	return p
}

func (p *proc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

func (p *proc) logTail(t *testing.T) string {
	t.Helper()
	b, _ := os.ReadFile(p.log.Name())
	if len(b) > 4096 {
		b = b[len(b)-4096:]
	}
	return string(b)
}

func waitHealthy(t *testing.T, p *proc, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy; log:\n%s", addr, p.logTail(t))
}

// startCluster brings up n clustered replicas and returns their
// addresses plus process handles (index-aligned).
func startCluster(t *testing.T, n int, extra ...string) ([]string, []*proc) {
	t.Helper()
	addrs := freeAddrs(t, n)
	procs := make([]*proc, n)
	for i, addr := range addrs {
		var peers []string
		for j, other := range addrs {
			if j != i {
				peers = append(peers, other)
			}
		}
		args := []string{"-addr", addr, "-advertise", addr}
		if len(peers) > 0 {
			args = append(args, "-peers", strings.Join(peers, ","))
		}
		args = append(args, extra...)
		procs[i] = startProc(t, "ringschedd", args...)
	}
	for i, addr := range addrs {
		waitHealthy(t, procs[i], addr)
	}
	return addrs, procs
}

func startLB(t *testing.T, backends []string, extra ...string) (string, *proc) {
	t.Helper()
	addr := freeAddrs(t, 1)[0]
	args := append([]string{"-addr", addr, "-backends", strings.Join(backends, ",")}, extra...)
	p := startProc(t, "ringsched-lb", args...)
	waitHealthy(t, p, addr)
	return addr, p
}

// metricSum scrapes one replica and sums every sample of the named
// metric across its label sets (optionally filtered by a label substring).
func metricSum(t *testing.T, addr, metric, labelFilter string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var sum float64
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, metric) || strings.HasPrefix(line, "#") {
			continue
		}
		if labelFilter != "" && !strings.Contains(line, labelFilter) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		sum += v
	}
	return sum
}

func clusterComputations(t *testing.T, addrs []string, endpoint string) float64 {
	t.Helper()
	var total float64
	for _, a := range addrs {
		total += metricSum(t, a, "ringschedd_computations_total", `endpoint="`+endpoint+`"`)
	}
	return total
}

func postAnalyze(addr, body string) (int, string, error) {
	resp, err := http.Post("http://"+addr+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Cache"), nil
}

// runLoadgen executes ringloadgen and parses its key-value summary.
func runLoadgen(t *testing.T, args ...string) map[string]float64 {
	t.Helper()
	out, err := exec.Command(filepath.Join(binDir, "ringloadgen"), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("ringloadgen %v: %v\n%s", args, err, out)
	}
	vals := map[string]float64{}
	for _, m := range regexp.MustCompile(`(?m)^([a-z0-9_]+) ([0-9.]+)$`).FindAllStringSubmatch(string(out), -1) {
		v, err := strconv.ParseFloat(m[2], 64)
		if err == nil {
			vals[m[1]] = v
		}
	}
	if _, ok := vals["goodput_rps"]; !ok {
		t.Fatalf("loadgen summary unparseable:\n%s", out)
	}
	return vals
}

func analyzeBody(bw int) string {
	return fmt.Sprintf(`{"bandwidthMbps":%d,"streams":[{"name":"s","periodMs":10,"lengthBits":4096},{"name":"t","periodMs":50,"lengthBits":65536}]}`, bw)
}

// TestClusterWideCoalescingAcrossProcesses sprays one identical request
// concurrently at every replica of a 3-member cluster: peer fills must
// route all of them to the key's owner, whose flight group collapses the
// burst to exactly one computation cluster-wide.
func TestClusterWideCoalescingAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	addrs, _ := startCluster(t, 3)

	body := analyzeBody(7777)
	const perReplica = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(addrs)*perReplica)
	for _, addr := range addrs {
		for i := 0; i < perReplica; i++ {
			wg.Add(1)
			go func(a string) {
				defer wg.Done()
				code, _, err := postAnalyze(a, body)
				if err != nil {
					errs <- err
				} else if code != http.StatusOK {
					errs <- fmt.Errorf("replica %s: status %d", a, code)
				}
			}(addr)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := clusterComputations(t, addrs, "analyze"); got != 1 {
		t.Errorf("identical burst across 3 replicas computed %g times, want exactly 1", got)
	}
	var fills float64
	for _, a := range addrs {
		fills += metricSum(t, a, "ringschedd_peer_fill_total", "")
	}
	if fills < 2 {
		t.Errorf("peer fill counter = %g, want >= 2 (both non-owners must have filled from the owner)", fills)
	}

	// Through the front door: a fresh identical burst via the lb also
	// costs one computation, and a repeat is a shard-cache hit.
	lbAddr, _ := startLB(t, addrs)
	body2 := analyzeBody(8888)
	before := clusterComputations(t, addrs, "analyze")
	var wg2 sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			postAnalyze(lbAddr, body2)
		}()
	}
	wg2.Wait()
	if got := clusterComputations(t, addrs, "analyze") - before; got != 1 {
		t.Errorf("lb-routed identical burst computed %g times, want 1", got)
	}
	if code, xc, err := postAnalyze(lbAddr, body2); err != nil || code != 200 || xc != "hit" {
		t.Errorf("repeat via lb: code %d cache %q err %v, want warm hit", code, xc, err)
	}
}

// TestGoodputScalesWithReplicas is the scaling acceptance run: the same
// cache-miss-heavy open-loop load against 1, 2, and 4 rate-limited
// replicas behind the lb. Shard routing must spread distinct keys over
// all replicas, so cluster goodput rises ~linearly with replica count.
func TestGoodputScalesWithReplicas(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	good := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		addrs, _ := startCluster(t, n,
			"-client-rps", "25", "-client-burst", "10", "-peer-fill-timeout", "500ms")
		lbAddr, _ := startLB(t, addrs, "-retries", "-1")
		rep := runLoadgen(t,
			"-base", "http://"+lbAddr, "-rps", "320", "-duration", "4s",
			"-mix", "analyze", "-distinct", "0", "-deadline-ms", "2000",
			"-seed", strconv.Itoa(1000+n), "-client-id", "e2e-scale")
		good[n] = rep["goodput_rps"]
		t.Logf("replicas=%d goodput=%.1f rps (sent %.0f, rate-limited %.0f)",
			n, rep["goodput_rps"], rep["sent"], rep["rate_limited"])
	}
	if good[1] <= 0 {
		t.Fatal("no goodput at 1 replica — load never landed")
	}
	if good[2] < 1.7*good[1] {
		t.Errorf("2 replicas: goodput %.1f < 1.7x single-replica %.1f", good[2], good[1])
	}
	if good[4] < 3*good[1] {
		t.Errorf("4 replicas: goodput %.1f < 3x single-replica %.1f", good[4], good[1])
	}
}

// TestKilledReplicaLosesOnlyItsShard SIGKILLs one of two replicas in the
// middle of a load run: the lb must fail its shard's traffic over to the
// survivor (in-request failover first, health checks catching up), so the
// run loses at most the killed replica's in-flight work.
func TestKilledReplicaLosesOnlyItsShard(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	addrs, procs := startCluster(t, 2, "-peer-fill-timeout", "500ms")
	lbAddr, _ := startLB(t, addrs, "-retries", "-1", "-check-interval", "250ms")

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(2 * time.Second)
		procs[0].kill()
	}()
	rep := runLoadgen(t,
		"-base", "http://"+lbAddr, "-rps", "80", "-duration", "6s",
		"-mix", "analyze", "-distinct", "0", "-deadline-ms", "2000",
		"-seed", "31", "-client-id", "e2e-kill")
	<-killed

	if rate := rep["error_rate"]; rate > 0.10 {
		t.Errorf("error rate %.3f after replica kill, want <= 0.10 (only the dead shard's in-flight work may fail)", rate)
	}
	// The survivor must carry the full offered load: well above the
	// half-cluster goodput a shard-blind failover would strand.
	if rep["goodput_rps"] < 40 {
		t.Errorf("goodput %.1f rps after kill, want >= 40 (survivor absorbs the dead shard)", rep["goodput_rps"])
	}
	resp, err := http.Get("http://" + lbAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("lb /healthz = %d with a survivor present, want 200", resp.StatusCode)
	}
	if code, _, err := postAnalyze(lbAddr, analyzeBody(4242)); err != nil || code != http.StatusOK {
		t.Errorf("fresh request after kill: code %d err %v", code, err)
	}
}
