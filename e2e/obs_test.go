package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestFederatedTraceAcrossProcesses is the observability-plane
// acceptance path: an lb fronting only replica A of a two-member
// cluster, a request whose shard owner is B (so A peer-fills), and then
// ONE query to the lb's /debug/traces returning a merged span tree with
// member-attributed spans from all three processes.
func TestFederatedTraceAcrossProcesses(t *testing.T) {
	addrs, _ := startCluster(t, 2)
	lbAddr, _ := startLB(t, addrs[:1]) // front A only; B reachable via peer fill

	// Probe bandwidths until a request peer-fills: its canonical key's
	// cluster owner is B, and the lb only talks to A.
	var traceID string
	for bw := 1; bw < 4096; bw++ {
		body := fmt.Sprintf(`{"bandwidthMbps":%d,"streams":[{"name":"s","periodMs":10,"lengthBits":4096}]}`, bw)
		resp, err := http.Post("http://"+lbAddr+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze via lb: %d", resp.StatusCode)
		}
		if resp.Header.Get("X-Cache") == "peer" {
			traceID = resp.Header.Get("X-Ringsched-Trace")
			break
		}
	}
	if traceID == "" {
		t.Fatal("no bandwidth produced a peer fill; cluster routing broken?")
	}

	resp, err := http.Get("http://" + lbAddr + "/debug/traces?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr struct {
		Spans []struct {
			TraceID string `json:"traceId"`
			Name    string `json:"name"`
			Member  string `json:"member"`
		} `json:"spans"`
		Tree    []json.RawMessage `json:"tree"`
		Members []struct {
			Member string `json:"member"`
			Spans  int    `json:"spans"`
			Error  string `json:"error,omitempty"`
		} `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	spansBy := map[string][]string{}
	for _, s := range tr.Spans {
		if s.TraceID != traceID {
			t.Fatalf("foreign trace %s in response", s.TraceID)
		}
		spansBy[s.Member] = append(spansBy[s.Member], s.Name)
	}
	for _, member := range []string{"ringsched-lb", addrs[0], addrs[1]} {
		if len(spansBy[member]) == 0 {
			t.Errorf("no spans attributed to %s (got %v)", member, spansBy)
		}
	}
	if len(tr.Tree) == 0 {
		t.Error("no assembled span tree in federated response")
	}
	has := func(member, span string) bool {
		for _, n := range spansBy[member] {
			if n == span {
				return true
			}
		}
		return false
	}
	if !has("ringsched-lb", "lb.forward") {
		t.Errorf("lb spans incomplete: %v", spansBy["ringsched-lb"])
	}
	if !has(addrs[0], "peer.fill") {
		t.Errorf("fronted replica should carry the peer.fill span: %v", spansBy[addrs[0]])
	}
}

// TestHistoryReplayThroughRingadmit drives ring edits over the wire,
// then has the real ringadmit binary fetch the audit trail and certify
// that replaying it reproduces the live verdicts bit-for-bit.
func TestHistoryReplayThroughRingadmit(t *testing.T) {
	addrs, _ := startCluster(t, 1)
	base := "http://" + addrs[0]

	post := func(path, body string) map[string]any {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s: %d %v", path, resp.StatusCode, out)
		}
		return out
	}

	created := post("/v1/rings",
		`{"bandwidthMbps":4,"faultModel":"loss:p=1e-3","streams":[{"name":"gyro","periodMs":10,"lengthBits":4096}]}`)
	ringID, _ := created["id"].(string)
	if ringID == "" {
		t.Fatalf("no ring id in %v", created)
	}
	for i := 0; i < 5; i++ {
		post("/v1/rings/"+ringID+"/streams",
			fmt.Sprintf(`{"stream":{"periodMs":%g,"lengthBits":%d}}`, 10+float64(i)/3, 4096*(i+1)))
	}

	cmd := exec.Command(filepath.Join(binDir, "ringadmit"),
		"-base", base, "-verify-history", ringID)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("ringadmit -verify-history: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verified: ring "+ringID) {
		t.Fatalf("unexpected ringadmit output:\n%s", out.String())
	}
}
