// Cpurm demonstrates the rate-monotonic analysis substrate on plain CPU
// task sets — the machinery Theorem 4.1 builds on, exposed through the
// public facade. It contrasts the sufficient utilization bounds
// (Liu–Layland, hyperbolic) with the exact test on a classic example, then
// reproduces two well-known averages with the breakdown engine: ≈88 % for
// uniformly drawn task sets and exactly 100 % for harmonic ones.
package main

import (
	"fmt"
	"log"

	"ringsched"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The textbook example: U ≈ 0.953, far above every utilization bound,
	// yet exactly schedulable.
	tasks := ringsched.TaskSet{
		{Cost: 40e-3, Period: 100e-3},
		{Cost: 40e-3, Period: 150e-3},
		{Cost: 100e-3, Period: 350e-3},
	}.SortRM()

	fmt.Printf("task set utilization: %.4f\n", tasks.Utilization())
	fmt.Printf("Liu–Layland bound (n=%d): %.4f → admits: %v\n",
		len(tasks), ringsched.LiuLaylandBound(len(tasks)),
		tasks.Utilization() <= ringsched.LiuLaylandBound(len(tasks)))
	fmt.Printf("hyperbolic bound admits: %v\n", ringsched.HyperbolicSchedulable(tasks))

	res, err := ringsched.ResponseTimeAnalysis(tasks, 0)
	if err != nil {
		return err
	}
	fmt.Printf("exact test: schedulable=%v\n", res.Schedulable)
	for i, r := range res.ResponseTimes {
		fmt.Printf("  task %d: worst-case response %.0f ms (period %.0f ms)\n",
			i+1, r*1e3, tasks[i].Period*1e3)
	}

	// Blocking (priority inversion) shrinks the guarantee — the effect
	// Theorem 4.1 bounds with B = 2·max(F, Θ) on the ring.
	blocked, err := ringsched.ResponseTimeAnalysis(tasks, 25e-3)
	if err != nil {
		return err
	}
	fmt.Printf("with 25 ms blocking: schedulable=%v\n\n", blocked.Schedulable)

	// Average breakdown utilization, the paper's comparison metric, on
	// two workload families. Streams at bandwidth 1 are abstract tasks.
	for _, cfg := range []struct {
		name    string
		periods ringsched.PeriodModel
		lengths ringsched.LengthModel
		ratio   float64
	}{
		{"uniform periods (ratio 100)", ringsched.PeriodsUniform, ringsched.LengthsUniform, 100},
		{"harmonic periods (ratio 8)", ringsched.PeriodsHarmonic, ringsched.LengthsProportional, 8},
	} {
		est := ringsched.Estimator{
			Generator: ringsched.Generator{
				Streams:     30,
				MeanPeriod:  100e-3,
				PeriodRatio: cfg.ratio,
				Periods:     cfg.periods,
				Lengths:     cfg.lengths,
			},
			Samples: 150,
			Seed:    7,
		}
		e, err := est.Estimate(ringsched.IdealRM{}, 1)
		if err != nil {
			return err
		}
		fmt.Printf("ideal RM avg breakdown, %-28s %.4f ±%.4f\n", cfg.name+":", e.Mean, e.CI95)
	}
	fmt.Println("\n(≈0.88–0.90 for uniform sets, exactly 1.0 for harmonic sets —")
	fmt.Println("the Lehoczky–Sha–Ding averages the paper's methodology builds on.)")
	return nil
}
