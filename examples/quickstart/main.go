// Quickstart: build a small synchronous message set, test its
// schedulability under all three protocols of the paper, and estimate each
// protocol's average breakdown utilization at one bandwidth.
package main

import (
	"fmt"
	"log"

	"ringsched"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const bw = 16e6 // 16 Mbps token ring

	// Three periodic streams: a tight control loop, telemetry, and a bulk
	// sensor dump. Deadlines are the ends of the periods.
	set := ringsched.MessageSet{
		{Name: "control", Period: 10e-3, LengthBits: 8_192},
		{Name: "telemetry", Period: 40e-3, LengthBits: 131_072},
		{Name: "bulk", Period: 200e-3, LengthBits: 1_048_576},
	}
	fmt.Printf("payload utilization at %.0f Mbps: %.3f\n\n", bw/1e6, set.Utilization(bw))

	// 1. Schedulability under each protocol.
	for _, variant := range []ringsched.PDPVariant{ringsched.Modified8025, ringsched.Standard8025} {
		pdp := ringsched.NewStandardPDP(bw)
		pdp.Variant = variant
		ok, err := pdp.Schedulable(set)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s guaranteed: %v\n", pdp.Name(), ok)
	}
	ttp := ringsched.NewTTP(bw)
	ok, err := ttp.Schedulable(set)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s guaranteed: %v\n\n", ttp.Name(), ok)

	// 2. The FDDI view in detail: TTRT and per-station synchronous
	// bandwidth allocations (Theorem 5.1).
	rep, err := ttp.Report(set)
	if err != nil {
		return err
	}
	fmt.Printf("FDDI TTRT=%.3f ms, per-rotation capacity %.3f ms, allocated %.3f ms\n",
		rep.TTRT*1e3, rep.Capacity*1e3, rep.TotalAllocation*1e3)
	for _, s := range rep.Streams {
		fmt.Printf("  %-10s h=%.1f us over %d visits/period\n",
			s.Stream.Name, s.Allocation*1e6, s.Q-1)
	}
	fmt.Println()

	// 3. How far can this mix be pushed? Drive the set to saturation
	// under each protocol (same relative mix, growing lengths).
	for _, a := range []ringsched.Analyzer{
		ringsched.NewModifiedPDP(bw),
		ringsched.NewStandardPDP(bw),
		ttp,
	} {
		sat, err := ringsched.Saturate(set, a, bw, ringsched.SaturateOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("%-16s breakdown utilization for this mix: %.3f\n", a.Name(), sat.Utilization)
	}
	return nil
}
