// Avionics models a SAFENET-style mission system on a low-speed token
// ring, the regime where the paper recommends the priority driven protocol:
// at 1–10 Mbps the rate-monotonic implementation on IEEE 802.5 beats the
// timed token protocol because its priority arbitration overheads are still
// small relative to frame times.
//
// The example checks a radar/weapons/navigation workload at 4 Mbps under
// both 802.5 variants and FDDI, shows the PDP advantage, and validates the
// modified-802.5 analysis operationally under worst-case phasing with
// saturated asynchronous interference.
package main

import (
	"fmt"
	"log"

	"ringsched"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const bw = 4e6 // classic 4 Mbps IEEE 802.5 ring

	set := ringsched.MessageSet{
		{Name: "radar-track", Period: 20e-3, LengthBits: 6_000},
		{Name: "weapons-status", Period: 25e-3, LengthBits: 4_000},
		{Name: "nav-update", Period: 40e-3, LengthBits: 12_000},
		{Name: "flight-controls", Period: 50e-3, LengthBits: 8_000},
		{Name: "ecm-alerts", Period: 80e-3, LengthBits: 16_000},
		{Name: "datalink", Period: 100e-3, LengthBits: 48_000},
		{Name: "mission-log", Period: 200e-3, LengthBits: 96_000},
		{Name: "maintenance", Period: 400e-3, LengthBits: 64_000},
	}
	n := len(set)
	fmt.Printf("workload: %d streams, payload utilization %.3f at %.0f Mbps\n\n",
		n, set.Utilization(bw), bw/1e6)

	// Compare how far each protocol can push this mix (breakdown
	// utilization of the mix, not just a yes/no at current load).
	mod := ringsched.NewModifiedPDP(bw)
	mod.Net = mod.Net.WithStations(n)
	std := ringsched.NewStandardPDP(bw)
	std.Net = std.Net.WithStations(n)
	ttp := ringsched.NewTTP(bw)
	ttp.Net = ttp.Net.WithStations(n)

	for _, a := range []ringsched.Analyzer{mod, std, ttp} {
		ok, err := a.Schedulable(set)
		if err != nil {
			return err
		}
		sat, err := ringsched.Saturate(set, a, bw, ringsched.SaturateOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("%-16s guaranteed now: %-5v  mix breakdown utilization: %.3f\n",
			a.Name(), ok, sat.Utilization)
	}
	fmt.Println()

	// Rate-monotonic priorities on the modified 802.5 ring, per stream.
	rep, err := mod.Report(set)
	if err != nil {
		return err
	}
	fmt.Println("modified 802.5 rate-monotonic analysis (highest priority first):")
	for i, s := range rep.Streams {
		fmt.Printf("  %d. %-16s P=%5.0fms  frames=%3d  worst response=%7.2fms  ok=%v\n",
			i+1, s.Stream.Name, s.Stream.Period*1e3, s.Frames, s.ResponseTime*1e3, s.Schedulable)
	}
	fmt.Println()

	// Operational validation: worst-case phasing, saturated asynchronous
	// traffic, analysis's Θ/2 token-pass model.
	w, err := ringsched.NewWorkload(set, n, ringsched.PhasingSynchronized, nil)
	if err != nil {
		return err
	}
	res, err := ringsched.PDPSimulation{
		Net:            mod.Net,
		Frame:          mod.Frame,
		Variant:        ringsched.Modified8025,
		Workload:       w,
		AsyncSaturated: true,
		TokenPass:      ringsched.PassAverageHalfTheta,
		Horizon:        8, // seconds = 20 periods of the slowest stream
	}.Run()
	if err != nil {
		return err
	}
	fmt.Printf("simulation (%.0f s, saturated async, critical-instant phasing): %d deadline misses\n",
		res.Horizon, res.DeadlineMisses)
	fmt.Printf("medium occupancy: sync %.3f, async %.3f, token %.3f, idle %.3f\n",
		res.SyncTime/res.Horizon, res.AsyncTime/res.Horizon,
		res.TokenTime/res.Horizon, res.IdleTime/res.Horizon)
	return nil
}
