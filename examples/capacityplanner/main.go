// Capacityplanner answers the design-stage question the paper's comparison
// is built for: given a synchronous workload, which protocol needs less
// bandwidth to guarantee it?
//
// It binary-searches, per protocol, the minimum bandwidth at which a
// workload is guaranteed, for two workloads on opposite sides of the
// paper's crossover: a light mix that fits in the PDP-favored 1–10 Mbps
// regime, and a heavy mix that forces the network into the TTP-favored
// high-bandwidth regime — where the PDP guarantee needs *far more*
// bandwidth because every frame's effective cost degenerates to the token
// circulation time Θ.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"ringsched"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func analyzers(bw float64, n int) []ringsched.Analyzer {
	mod := ringsched.NewModifiedPDP(bw)
	mod.Net = mod.Net.WithStations(n)
	std := ringsched.NewStandardPDP(bw)
	std.Net = std.Net.WithStations(n)
	ttp := ringsched.NewTTP(bw)
	ttp.Net = ttp.Net.WithStations(n)
	return []ringsched.Analyzer{mod, std, ttp}
}

// minBandwidth binary-searches the smallest bandwidth (within 0.5 %) at
// which protocol index proto guarantees the set. Schedulability is not
// strictly monotone in bandwidth for the PDP (effective frame cost rises
// toward Θ at high speed), so the search first scans for a feasible region.
func minBandwidth(set ringsched.MessageSet, n, proto int) (float64, error) {
	const loBound, hiBound = 1e5, 1e11
	// Scan a log grid for the first guaranteed point.
	var lo, hi float64
	found := false
	prev := loBound
	for x := loBound; x <= hiBound; x *= 1.3 {
		ok, err := analyzers(x, n)[proto].Schedulable(set)
		if err != nil {
			return 0, err
		}
		if ok {
			lo, hi = prev, x
			found = true
			break
		}
		prev = x
	}
	if !found {
		return 0, fmt.Errorf("not guaranteed at any bandwidth up to %.0f Gbps", hiBound/1e9)
	}
	for hi/lo > 1.005 {
		mid := lo * math.Sqrt(hi/lo) // geometric midpoint
		ok, err := analyzers(mid, n)[proto].Schedulable(set)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

func plan(title string, set ringsched.MessageSet, n int) error {
	fmt.Printf("%s: %d streams, %.2f Mbit/s aggregate synchronous payload\n",
		title, n, set.TotalBitsPerSecond()/1e6)
	names := []string{"Modified 802.5", "IEEE 802.5", "FDDI"}
	best, bestBW := "", math.Inf(1)
	for i, name := range names {
		bw, err := minBandwidth(set, n, i)
		if err != nil {
			fmt.Printf("  %-16s %v\n", name, err)
			continue
		}
		fmt.Printf("  %-16s needs ≥ %8.2f Mbps\n", name, bw/1e6)
		if bw < bestBW {
			best, bestBW = name, bw
		}
	}
	fmt.Printf("  → cheapest guarantee: %s\n\n", best)
	return nil
}

func run() error {
	const n = 24
	gen := ringsched.Generator{Streams: n, MeanPeriod: 50e-3, PeriodRatio: 8}
	base, err := gen.Draw(rand.New(rand.NewSource(42)))
	if err != nil {
		return err
	}

	// Light mix: 1.5 Mbit/s of payload — the classic 4/16 Mbps ring
	// territory where the paper recommends the priority driven protocol.
	light, err := base.ScaleToUtilization(1.5/4.0, 4e6)
	if err != nil {
		return err
	}
	if err := plan("light workload", light, n); err != nil {
		return err
	}

	// Heavy mix: 40 Mbit/s of payload — only high-speed rings can carry
	// it, and there the timed token protocol needs less bandwidth.
	heavy, err := base.ScaleToUtilization(40.0/100.0, 100e6)
	if err != nil {
		return err
	}
	if err := plan("heavy workload", heavy, n); err != nil {
		return err
	}

	// The guarantee map shows the PDP anomaly directly: for the heavy
	// workload the 802.5 guarantee does not simply improve with bandwidth.
	fmt.Println("guarantee map for the heavy workload (✓ = guaranteed):")
	names := []string{"Modified 802.5", "IEEE 802.5", "FDDI"}
	fmt.Printf("%12s %18s %18s %18s\n", "BW (Mbps)", names[0], names[1], names[2])
	for _, mbps := range []float64{50, 100, 200, 400, 1000, 4000} {
		fmt.Printf("%12g", mbps)
		for i := range names {
			ok, err := analyzers(ringsched.Mbps(mbps), n)[i].Schedulable(heavy)
			if err != nil {
				return err
			}
			mark := "-"
			if ok {
				mark = "✓"
			}
			fmt.Printf(" %18s", mark)
		}
		fmt.Println()
	}
	fmt.Println("\nWith 64-byte frames the PDP cannot carry this frame rate at any speed:")
	fmt.Println("each frame's effective cost is bounded below by the token circulation")
	fmt.Println("time Θ (dominated by the 10 km ring's propagation delay), which no")
	fmt.Println("bandwidth increase can remove — exactly the anomaly behind Figure 1's")
	fmt.Println("falling 802.5 curves. FDDI releases the token immediately after")
	fmt.Println("transmitting and keeps multiple frames in flight, so it is immune.")
	return nil
}
