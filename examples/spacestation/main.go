// Spacestation models the scenario that motivated the paper: an FDDI
// backbone (100 Mbps) carrying the periodic telemetry, guidance and video
// traffic of a crewed station — FDDI was the selected backbone for NASA's
// Space Station Freedom.
//
// The example sizes a realistic mixed workload, verifies it with the
// Theorem 5.1 analysis, then runs the operational FDDI simulator with
// saturated asynchronous background traffic and worst-case phasing to show
// that no deadline is missed and that token rotations respect Johnson's
// 2·TTRT bound.
package main

import (
	"fmt"
	"log"

	"ringsched"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const bw = 100e6 // FDDI

	// 32 stations: guidance ring, life support sensors, experiment racks,
	// and two video feeds. Periods in seconds, payloads in bits.
	var set ringsched.MessageSet
	for i := 0; i < 8; i++ { // guidance & attitude: 10 ms loops, 2 KiB
		set = append(set, ringsched.Stream{
			Name: fmt.Sprintf("guidance-%d", i), Period: 10e-3, LengthBits: 8_192,
		})
	}
	for i := 0; i < 12; i++ { // life support: 50 ms, 8 KiB
		set = append(set, ringsched.Stream{
			Name: fmt.Sprintf("lifesupport-%d", i), Period: 50e-3, LengthBits: 32_768,
		})
	}
	for i := 0; i < 10; i++ { // experiment racks: 100 ms, 64 KiB
		set = append(set, ringsched.Stream{
			Name: fmt.Sprintf("experiment-%d", i), Period: 100e-3, LengthBits: 131_072,
		})
	}
	for i := 0; i < 2; i++ { // video: 33 ms frames, ~128 KiB
		set = append(set, ringsched.Stream{
			Name: fmt.Sprintf("video-%d", i), Period: 33e-3, LengthBits: 262_144,
		})
	}

	fmt.Printf("stations: %d, payload utilization: %.3f at %.0f Mbps\n",
		len(set), set.Utilization(bw), bw/1e6)

	ttp := ringsched.NewTTP(bw)
	ttp.Net = ttp.Net.WithStations(len(set))
	rep, err := ttp.Report(set)
	if err != nil {
		return err
	}
	fmt.Printf("TTRT (bid √(θ·Pmin)): %.3f ms, θ=%.1f us\n", rep.TTRT*1e3, rep.Overhead*1e6)
	fmt.Printf("synchronous allocation: %.3f ms of %.3f ms capacity per rotation\n",
		rep.TotalAllocation*1e3, rep.Capacity*1e3)
	fmt.Printf("guaranteed by Theorem 5.1: %v\n\n", rep.Schedulable)
	if !rep.Schedulable {
		return fmt.Errorf("workload not schedulable; reduce payloads")
	}

	// Operational check: worst-case phasing (all first messages at t=0),
	// every station also saturating the ring with asynchronous traffic.
	w, err := ringsched.NewWorkload(set, len(set), ringsched.PhasingSynchronized, nil)
	if err != nil {
		return err
	}
	simc, err := ringsched.NewTTPSimulation(ttp, set, w)
	if err != nil {
		return err
	}
	simc.AsyncSaturated = true
	simc.Horizon = 2.0 // seconds
	res, err := simc.Run()
	if err != nil {
		return err
	}

	fmt.Printf("simulated %.1f s: %d deadline misses\n", res.Horizon, res.DeadlineMisses)
	fmt.Printf("medium occupancy: sync %.3f, async %.3f, token %.3f\n",
		res.SyncTime/res.Horizon, res.AsyncTime/res.Horizon, res.TokenTime/res.Horizon)
	fmt.Printf("token rotation: mean %.3f ms, max %.3f ms (bound 2·TTRT = %.3f ms)\n",
		res.RotationMean*1e3, res.RotationMax*1e3, 2*simc.TTRT*1e3)

	worst := 0.0
	worstName := ""
	for _, s := range res.Stations {
		if s.MaxResponse/s.Stream.Period > worst {
			worst = s.MaxResponse / s.Stream.Period
			worstName = s.Stream.Name
		}
	}
	fmt.Printf("tightest stream: %s used %.1f%% of its period in the worst case\n",
		worstName, worst*100)
	return nil
}
