// Package ringschedclient is the official Go client for the ringschedd
// HTTP API. It wraps the wire protocol with the failure handling a
// well-behaved client of an overload-protected server needs:
//
//   - capped exponential backoff with full jitter between retries, so a
//     shared failure does not resynchronize every client into a retry
//     storm,
//   - a retry budget bounding how much load retries may add — when the
//     server is failing everything, retries dry up instead of
//     multiplying the overload,
//   - Retry-After honoring: a server hint always stretches (never
//     shortens) the computed backoff,
//   - a circuit breaker that stops hammering a consistently failing
//     server and probes it back to health, and
//   - optional hedged requests for latency smoothing: every ringschedd
//     endpoint is deterministic and cached, so issuing a duplicate after
//     a hedge delay is always safe.
//
// All failures surface as *APIError (typed server rejections, carrying
// the wire code and Retry-After hint) or transport errors; callers can
// switch on APIError.Code using the taxonomy in internal/resilience.
package ringschedclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ringsched/internal/resilience"
	"ringsched/internal/trace"
)

// Options tunes a Client. The zero value is a sensible production
// configuration: 3 retries, 50ms..5s full-jitter backoff, a 10%% retry
// budget, a 5-failure breaker with a 5s cooldown, and no hedging.
type Options struct {
	// HTTPClient is the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxRetries bounds retries per call; total attempts are
	// MaxRetries+1. Negative disables retries entirely; 0 selects 3.
	MaxRetries int
	// Backoff computes the delay before each retry. The zero value
	// selects the package defaults (50ms base, 5s cap, seeded jitter).
	Backoff resilience.Backoff
	// RetryBudgetRatio is the retry-budget earn rate per first attempt
	// (default 0.1); RetryBudgetBurst caps the banked balance
	// (default 10).
	RetryBudgetRatio float64
	RetryBudgetBurst float64
	// Breaker configures the circuit breaker (zero value: threshold 5,
	// cooldown 5s).
	Breaker resilience.BreakerConfig
	// Hedge, when positive, issues a duplicate request if the first has
	// not answered within this delay, returning whichever finishes
	// first. Safe for every ringschedd endpoint (deterministic, cached).
	Hedge time.Duration
	// Deadline, when positive, bounds each call and is propagated to the
	// server via X-Ringsched-Deadline-Ms so admission control can shed
	// requests it cannot serve in time. A tighter context deadline wins.
	Deadline time.Duration
	// ClientID is sent as X-Ringsched-Client, the server's rate-limit
	// key.
	ClientID string
	// Headers are static extra headers set on every request (e.g. the
	// cluster peer-fill hop guard). They are applied before the standard
	// headers and cannot override Content-Type, X-Ringsched-Client, or
	// X-Ringsched-Deadline-Ms.
	Headers map[string]string

	// sleep replaces the interruptible retry sleep in tests.
	sleep func(context.Context, time.Duration) error
}

// Counters are the client's lifetime resilience statistics.
type Counters struct {
	Attempts          int64 // HTTP round trips issued (hedges included)
	Retries           int64 // retry sleeps taken
	Hedges            int64 // hedged duplicates launched
	BreakerRejections int64 // calls refused locally by the open breaker
	BudgetExhausted   int64 // retries refused by the retry budget
}

// Client is a ringschedd API client. It is safe for concurrent use.
type Client struct {
	base    string
	opts    Options
	hc      *http.Client
	breaker *resilience.Breaker
	budget  *resilience.RetryBudget
	sleep   func(context.Context, time.Duration) error

	attempts  atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	rejected  atomic.Int64
	exhausted atomic.Int64
}

// New builds a client for the ringschedd instance at baseURL.
func New(baseURL string, opts Options) *Client {
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 3
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	c := &Client{
		base:    strings.TrimSuffix(baseURL, "/"),
		opts:    opts,
		hc:      opts.HTTPClient,
		breaker: resilience.NewBreaker(opts.Breaker),
		budget:  resilience.NewRetryBudget(opts.RetryBudgetRatio, opts.RetryBudgetBurst),
		sleep:   opts.sleep,
	}
	if c.sleep == nil {
		c.sleep = sleepCtx
	}
	return c
}

// Counters returns a snapshot of the client's resilience statistics.
func (c *Client) Counters() Counters {
	return Counters{
		Attempts:          c.attempts.Load(),
		Retries:           c.retries.Load(),
		Hedges:            c.hedges.Load(),
		BreakerRejections: c.rejected.Load(),
		BudgetExhausted:   c.exhausted.Load(),
	}
}

// BreakerState exposes the circuit breaker state for monitoring.
func (c *Client) BreakerState() resilience.BreakerState { return c.breaker.State() }

// APIError is a non-2xx server response: the HTTP status, the stable
// taxonomy code from the structured error body, the human-readable
// message, and the server's Retry-After hint (zero when absent).
type APIError struct {
	Status     int
	Code       resilience.Code
	Message    string
	RetryAfter time.Duration
	// CurrentVersion rides along on ring CAS conflicts (409): the ring's
	// actual version at rejection time, so the caller can rebase its edit
	// without an extra GET.
	CurrentVersion uint64
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("ringschedd: %d %s: %s", e.Status, e.Code, e.Message)
}

// Temporary reports whether retrying the identical request could
// succeed: rate limiting and server-side failures are temporary, other
// 4xx rejections are not.
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// Analyze posts req (any JSON-marshalable value mirroring the
// /v1/analyze request schema) and returns the raw response body.
func (c *Client) Analyze(ctx context.Context, req any) (json.RawMessage, error) {
	return c.Call(ctx, http.MethodPost, "/v1/analyze", req)
}

// Sweep posts req to /v1/sweep (non-streaming) and returns the body.
func (c *Client) Sweep(ctx context.Context, req any) (json.RawMessage, error) {
	return c.Call(ctx, http.MethodPost, "/v1/sweep", req)
}

// Topology posts req to /v1/topology/analyze and returns the body.
func (c *Client) Topology(ctx context.Context, req any) (json.RawMessage, error) {
	return c.Call(ctx, http.MethodPost, "/v1/topology/analyze", req)
}

// Health checks /healthz; a draining or dead server returns an error.
func (c *Client) Health(ctx context.Context) error {
	_, err := c.Call(ctx, http.MethodGet, "/healthz", nil)
	return err
}

// Call issues one API call with the full resilience stack: breaker gate,
// hedging, typed error decoding, budgeted retries with jittered backoff
// stretched by any server Retry-After hint.
func (c *Client) Call(ctx context.Context, method, path string, req any) (json.RawMessage, error) {
	body, _, err := c.CallHeader(ctx, method, path, req, nil)
	return body, err
}

// CallHeader is Call with the cluster-facing extensions: extra request
// headers applied per call (nil is fine; the front door uses this to
// pass the original client identity through to the backend), and the
// response headers of the winning attempt returned so proxies can read
// routing metadata (X-Cache, trace IDs) off proxied responses.
func (c *Client) CallHeader(ctx context.Context, method, path string, req any, extra http.Header) (json.RawMessage, http.Header, error) {
	var payload []byte
	if req != nil {
		var err error
		// json.RawMessage passes through Marshal verbatim, so proxies can
		// forward raw bodies without a decode/re-encode round trip.
		if payload, err = json.Marshal(req); err != nil {
			return nil, nil, fmt.Errorf("ringschedclient: encode request: %w", err)
		}
	}
	c.budget.Deposit()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := c.breaker.Allow(); err != nil {
			c.rejected.Add(1)
			if lastErr != nil {
				return nil, nil, fmt.Errorf("%w (last attempt: %w)", err, lastErr)
			}
			return nil, nil, err
		}
		resp, err := c.roundTrip(ctx, method, path, payload, extra)
		if err == nil {
			c.breaker.Success()
			return resp.body, resp.header, nil
		}
		lastErr = err
		// Every Allow admission is matched with a verdict, or the
		// half-open probe slot leaks and the breaker wedges open.
		if isBreakerFailure(err) {
			c.breaker.Failure()
		} else if ae := apiErrorOf(err); ae != nil && ae.Status == http.StatusTooManyRequests {
			// 429 means the server is healthy and protecting itself;
			// it must not push the breaker toward open.
			c.breaker.Success()
		} else {
			// No health verdict — our own context expired mid-flight,
			// or a non-429 4xx blamed the request rather than the
			// server. Release the admission without a diagnosis.
			c.breaker.Cancel()
		}
		if !isRetryable(err) || attempt >= c.opts.MaxRetries || ctx.Err() != nil {
			return nil, nil, lastErr
		}
		if !c.budget.Withdraw() {
			c.exhausted.Add(1)
			return nil, nil, fmt.Errorf("ringschedclient: retry budget exhausted: %w", lastErr)
		}
		delay := c.opts.Backoff.Delay(attempt)
		if ae := apiErrorOf(err); ae != nil && ae.RetryAfter > delay {
			delay = ae.RetryAfter
		}
		c.retries.Add(1)
		if err := c.sleep(ctx, delay); err != nil {
			return nil, nil, lastErr
		}
	}
}

// response is one successful attempt's body and headers.
type response struct {
	body   json.RawMessage
	header http.Header
}

// roundTrip performs one logical attempt, hedged when configured.
func (c *Client) roundTrip(ctx context.Context, method, path string, payload []byte, extra http.Header) (response, error) {
	if c.opts.Hedge <= 0 {
		return c.once(ctx, method, path, payload, extra)
	}
	type result struct {
		resp response
		err  error
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel() // the losing duplicate is cancelled, not leaked
	results := make(chan result, 2)
	launch := func() {
		r, err := c.once(rctx, method, path, payload, extra)
		results <- result{r, err}
	}
	go launch()
	outstanding, hedged := 1, false
	timer := time.NewTimer(c.opts.Hedge)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				outstanding++
				c.hedges.Add(1)
				go launch()
			}
		case r := <-results:
			if r.err == nil {
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding--; outstanding == 0 {
				return response{}, firstErr
			}
		case <-ctx.Done():
			return response{}, ctx.Err()
		}
	}
}

// once performs exactly one HTTP round trip.
func (c *Client) once(ctx context.Context, method, path string, payload []byte, extra http.Header) (response, error) {
	if c.opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Deadline)
		defer cancel()
	}
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return response{}, err
	}
	for k, v := range c.opts.Headers {
		req.Header.Set(k, v)
	}
	for k, vs := range extra {
		req.Header.Del(k)
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	// An active span in the caller's context propagates its trace ID so
	// peer fills and lb hops stitch into one end-to-end trace.
	if sp := trace.SpanFromContext(ctx); sp != nil && !sp.TraceID().IsZero() {
		req.Header.Set("X-Ringsched-Trace", sp.TraceID().String())
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.opts.ClientID != "" {
		req.Header.Set("X-Ringsched-Client", c.opts.ClientID)
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set("X-Ringsched-Deadline-Ms", strconv.FormatInt(ms, 10))
		}
	}
	c.attempts.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return response{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return response{}, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return response{body: raw, header: resp.Header}, nil
	}
	return response{}, decodeAPIError(resp, raw)
}

// decodeAPIError turns a non-2xx response into a typed *APIError,
// preferring the structured body and falling back to headers and status
// for servers (or proxies) that answer with something else.
func decodeAPIError(resp *http.Response, raw []byte) *APIError {
	ae := &APIError{Status: resp.StatusCode, Code: resilience.CodeInternal}
	var wire struct {
		Error          string `json:"error"`
		Code           string `json:"code"`
		RetryAfterMs   int64  `json:"retryAfterMs"`
		CurrentVersion uint64 `json:"currentVersion"`
	}
	if err := json.Unmarshal(raw, &wire); err == nil && wire.Error != "" {
		ae.Message = wire.Error
		if wire.Code != "" {
			ae.Code = resilience.Code(wire.Code)
		}
		ae.RetryAfter = time.Duration(wire.RetryAfterMs) * time.Millisecond
		ae.CurrentVersion = wire.CurrentVersion
	} else {
		ae.Message = strings.TrimSpace(string(raw))
		if ae.Message == "" {
			ae.Message = resp.Status
		}
	}
	if ae.RetryAfter == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// apiErrorOf extracts a typed server rejection from an error chain.
func apiErrorOf(err error) *APIError {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae
	}
	return nil
}

// isRetryable reports whether the identical request is worth retrying:
// transport failures and temporary server rejections are, context
// expirations and other 4xx are not.
func isRetryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if ae := apiErrorOf(err); ae != nil {
		return ae.Temporary()
	}
	return true // transport-level failure
}

// isBreakerFailure reports whether the error is evidence the server is
// unhealthy. 429s and the caller's own context expiry are not.
func isBreakerFailure(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if ae := apiErrorOf(err); ae != nil {
		return ae.Status >= 500
	}
	return true // connection refused, reset, etc.
}

// sleepCtx sleeps for d unless ctx fires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
