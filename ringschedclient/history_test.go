package ringschedclient_test

import (
	"context"
	"strings"
	"testing"

	"ringsched/ringschedclient"
)

func TestRingSessionHistory(t *testing.T) {
	c := newRingServer(t)
	ctx := context.Background()

	sess, _, err := c.CreateRing(ctx, ringschedclient.RingCreateRequest{
		BandwidthMbps: 16,
		Streams: []ringschedclient.RingStreamSpec{
			{Name: "gyro", PeriodMs: 10, LengthBits: 4096},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AddStream(ctx, ringschedclient.RingStreamSpec{
		Name: "telemetry", PeriodMs: 50, LengthBits: 65536,
	}); err != nil {
		t.Fatal(err)
	}

	h, err := sess.History(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.RingID != sess.ID() || h.Version != 2 || len(h.Records) != 2 {
		t.Fatalf("history %+v, want ring %s at v2 with 2 records", h, sess.ID())
	}
	if h.Records[0].Op != "create" || h.Records[1].Op != "add" {
		t.Fatalf("want ops create,add got %q,%q", h.Records[0].Op, h.Records[1].Op)
	}
	if h.Records[1].Stream == nil || h.Records[1].Stream.Name != "telemetry" {
		t.Fatalf("add record should carry the stream params: %+v", h.Records[1])
	}
	if h.Records[1].Client == "" || h.Records[1].Time.IsZero() {
		t.Fatalf("add record missing meta: %+v", h.Records[1])
	}

	script, err := sess.HistoryScript(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# ring " + sess.ID() + " history", "# bandwidth-mbps: 16", "add "} {
		if !strings.Contains(script, want) {
			t.Fatalf("script missing %q:\n%s", want, script)
		}
	}
}
