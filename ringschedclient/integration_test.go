// Integration tests pairing the client with a real in-process ringschedd
// server. They live in an external test package: internal/service now
// imports ringschedclient for the cluster peer-fill path, so an internal
// test package importing service would be an import cycle.
package ringschedclient_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ringsched/internal/resilience"
	"ringsched/internal/service"
	"ringsched/ringschedclient"
)

const integAnalyzeReqJSON = `{
  "bandwidthMbps": 100,
  "streams": [
    {"name": "gyro", "periodMs": 10, "lengthBits": 4096},
    {"name": "telemetry", "periodMs": 50, "lengthBits": 65536}
  ]
}`

func integAnalyzeReq(t *testing.T) any {
	t.Helper()
	var v map[string]any
	if err := json.Unmarshal([]byte(integAnalyzeReqJSON), &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func integOptions() ringschedclient.Options {
	o := ringschedclient.Options{
		MaxRetries: 3,
		Backoff: resilience.Backoff{
			Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond,
			Rand: func() float64 { return 0.999999 },
		},
	}
	ringschedclient.SetSleepForTest(&o, func(context.Context, time.Duration) error { return nil })
	return o
}

// TestClientRidesOutDeterministicChaos is the end-to-end acceptance
// check: a real ringschedd server with chaos-injected 503s, a client
// with budgeted retries — every call succeeds, and because the chaos is
// deterministic, so is the entire interaction.
func TestClientRidesOutDeterministicChaos(t *testing.T) {
	run := func() (succeeded int, retries int64) {
		srv := service.New(service.Config{
			Chaos: resilience.ChaosModel{Seed: 9, ErrorProb: 0.4, ErrorStatus: 503},
		})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			srv.Close()
		}()

		opts := integOptions()
		opts.MaxRetries = 6
		// Isolate the retry loop: give it headroom so neither the budget
		// nor the breaker interferes with the determinism assertion.
		opts.RetryBudgetBurst = 100
		opts.Breaker = resilience.BreakerConfig{Threshold: 100}
		c := ringschedclient.New(ts.URL, opts)
		for i := 0; i < 16; i++ {
			if _, err := c.Analyze(context.Background(), integAnalyzeReq(t)); err != nil {
				t.Errorf("call %d failed through chaos: %v", i, err)
				continue
			}
			succeeded++
		}
		return succeeded, c.Counters().Retries
	}
	ok1, retries1 := run()
	ok2, retries2 := run()
	if ok1 != 16 || ok2 != 16 {
		t.Errorf("succeeded %d/%d of 16", ok1, ok2)
	}
	if retries1 == 0 {
		t.Error("chaos at p=0.4 should have forced retries")
	}
	if retries1 != retries2 {
		t.Errorf("identical runs retried %d vs %d times — chaos or client not deterministic", retries1, retries2)
	}
}

func TestClientHealth(t *testing.T) {
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	c := ringschedclient.New(ts.URL, integOptions())
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("healthy server: %v", err)
	}
	srv.BeginDrain()
	err := c.Health(context.Background())
	var ae *ringschedclient.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("draining health err = %v, want typed 503", err)
	}
	if ae.Code != resilience.CodeUnavailable && ae.Message == "" {
		t.Errorf("draining health body not decoded: %+v", ae)
	}
}
