// Pool manages one Client per backend for cluster components that talk
// to many ringschedd replicas: the front door (one client per backend)
// and the peer-fill path (one client per peer). Keeping a distinct
// Client per base URL is what keeps the resilience state honest — each
// backend gets its own circuit breaker and retry budget, so one dead
// replica cannot open the breaker for its healthy siblings.
package ringschedclient

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Pool hands out per-base-URL Clients sharing one Options template. It
// is safe for concurrent use; Clients are created lazily and cached for
// the Pool's lifetime.
type Pool struct {
	opts Options

	mu      sync.Mutex
	clients map[string]*Client

	rr atomic.Uint64
}

// NewPool builds a pool whose Clients are configured from opts.
func NewPool(opts Options) *Pool {
	return &Pool{opts: opts, clients: map[string]*Client{}}
}

// Client returns the Client for base, creating it on first use. Base is
// a URL like "http://host:port"; bare "host:port" gets "http://".
func (p *Pool) Client(base string) *Client {
	base = normalizeBase(base)
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.clients[base]
	if !ok {
		c = New(base, p.opts)
		p.clients[base] = c
	}
	return c
}

// Bases returns the base URLs of every Client created so far, sorted.
func (p *Pool) Bases() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.clients))
	for b := range p.clients {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Pick round-robins over candidates (member addresses or base URLs) and
// returns the chosen Client. Empty candidates returns nil.
func (p *Pool) Pick(candidates []string) *Client {
	if len(candidates) == 0 {
		return nil
	}
	i := p.rr.Add(1) - 1
	return p.Client(candidates[i%uint64(len(candidates))])
}

// normalizeBase makes "host:port" and "http://host:port/" equivalent.
func normalizeBase(base string) string {
	if base == "" {
		return base
	}
	if len(base) < 7 || (base[:7] != "http://" && (len(base) < 8 || base[:8] != "https://")) {
		base = "http://" + base
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return base
}
