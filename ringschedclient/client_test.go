package ringschedclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ringsched/internal/resilience"
)

const analyzeReqJSON = `{
  "bandwidthMbps": 100,
  "streams": [
    {"name": "gyro", "periodMs": 10, "lengthBits": 4096},
    {"name": "telemetry", "periodMs": 50, "lengthBits": 65536}
  ]
}`

// analyzeReq returns the request as a generic value for Client.Analyze.
func analyzeReq(t *testing.T) any {
	t.Helper()
	var v map[string]any
	if err := json.Unmarshal([]byte(analyzeReqJSON), &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// instantSleep records requested delays without actually sleeping.
type instantSleep struct {
	delays []time.Duration
}

func (s *instantSleep) sleep(ctx context.Context, d time.Duration) error {
	s.delays = append(s.delays, d)
	return ctx.Err()
}

// zeroJitter makes backoff deterministic at the top of each window.
func zeroJitter() float64 { return 0.999999 }

func testOptions(sl *instantSleep) Options {
	o := Options{
		MaxRetries: 3,
		Backoff:    resilience.Backoff{Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond, Rand: zeroJitter},
	}
	if sl != nil {
		o.sleep = sl.sleep
	}
	return o
}

func TestClientRetriesTransientFailuresThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"shed","code":"overloaded","retryAfterMs":5}`))
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	sl := &instantSleep{}
	c := New(ts.URL, testOptions(sl))
	body, err := c.Analyze(context.Background(), analyzeReq(t))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !strings.Contains(string(body), `"ok":true`) {
		t.Errorf("body = %s", body)
	}
	if got := c.Counters(); got.Retries != 2 || got.Attempts != 3 {
		t.Errorf("counters = %+v, want 2 retries / 3 attempts", got)
	}
	if len(sl.delays) != 2 {
		t.Fatalf("sleeps = %v, want 2", sl.delays)
	}
}

func TestClientHonorsRetryAfterOverBackoff(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"slow down","code":"rate_limited","retryAfterMs":2000}`))
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	sl := &instantSleep{}
	c := New(ts.URL, testOptions(sl))
	if _, err := c.Analyze(context.Background(), analyzeReq(t)); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// The computed backoff tops out at 10ms for attempt 0, but the server
	// asked for 2s: the hint must stretch the wait.
	if len(sl.delays) != 1 || sl.delays[0] < 2*time.Second {
		t.Errorf("sleeps = %v, want one >= 2s", sl.delays)
	}
}

func TestClientDoesNotRetryPermanentRejections(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"service: bad request","code":"bad_request"}`))
	}))
	defer ts.Close()

	c := New(ts.URL, testOptions(&instantSleep{}))
	_, err := c.Analyze(context.Background(), analyzeReq(t))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest || ae.Code != resilience.CodeBadRequest {
		t.Fatalf("err = %v, want typed 400 bad_request", err)
	}
	if ae.Temporary() {
		t.Error("400 must not be Temporary")
	}
	if hits.Load() != 1 {
		t.Errorf("server hit %d times, want 1 (no retries on 4xx)", hits.Load())
	}
}

func TestClientRetryBudgetBoundsAmplification(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"down","code":"unavailable"}`))
	}))
	defer ts.Close()

	opts := testOptions(&instantSleep{})
	opts.MaxRetries = 10
	opts.RetryBudgetRatio = 0.1
	opts.RetryBudgetBurst = 1
	opts.Breaker = resilience.BreakerConfig{Threshold: 1000}
	c := New(ts.URL, opts)

	const calls = 5
	var exhausted int
	for i := 0; i < calls; i++ {
		_, err := c.Call(context.Background(), http.MethodPost, "/v1/analyze", analyzeReq(t))
		if err == nil {
			t.Fatal("want error from an always-failing server")
		}
		if strings.Contains(err.Error(), "retry budget exhausted") {
			exhausted++
		}
	}
	if exhausted == 0 {
		t.Error("budget never exhausted against a black-holed server")
	}
	// Without the budget, 5 calls × 11 attempts = 55 hits. The budget
	// caps retries at roughly one per ten first attempts (plus the
	// 1-token burst), so amplification stays near 1×.
	if n := hits.Load(); n > calls+3 {
		t.Errorf("server hit %d times for %d calls — retry amplification unbounded", n, calls)
	}
	if got := c.Counters(); got.BudgetExhausted == 0 {
		t.Errorf("counters = %+v, want BudgetExhausted > 0", got)
	}
}

func TestClientBreakerTripsThenRecovers(t *testing.T) {
	var hits atomic.Int64
	var healed atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if healed.Load() {
			w.Write([]byte(`{}`))
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"boom","code":"internal"}`))
	}))
	defer ts.Close()

	clock := time.Unix(1000, 0)
	opts := testOptions(&instantSleep{})
	opts.MaxRetries = -1 // isolate the breaker: one attempt per call
	opts.Breaker = resilience.BreakerConfig{
		Threshold: 2, Cooldown: time.Second,
		Now: func() time.Time { return clock },
	}
	c := New(ts.URL, opts)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := c.Analyze(ctx, analyzeReq(t)); err == nil {
			t.Fatal("want failure")
		}
	}
	if c.BreakerState() != resilience.BreakerOpen {
		t.Fatalf("state = %v, want open after %d failures", c.BreakerState(), 2)
	}
	// Open breaker: the call fails locally without touching the server.
	before := hits.Load()
	_, err := c.Analyze(ctx, analyzeReq(t))
	if !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if hits.Load() != before {
		t.Error("open breaker still sent a request")
	}
	if got := c.Counters(); got.BreakerRejections != 1 {
		t.Errorf("counters = %+v, want 1 breaker rejection", got)
	}

	// After the cooldown the half-open probe finds a healed server and
	// closes the breaker.
	healed.Store(true)
	clock = clock.Add(time.Second + time.Millisecond)
	if _, err := c.Analyze(ctx, analyzeReq(t)); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if c.BreakerState() != resilience.BreakerClosed {
		t.Errorf("state = %v, want closed after successful probe", c.BreakerState())
	}
}

// TestClientBreakerSurvivesTimedOutProbe is the regression test for the
// half-open probe leak: when the probe's outcome is the client's own
// deadline expiring (no health verdict either way), the probe slot must
// be released so the next call can probe again — not wedge every future
// call on ErrBreakerOpen exactly when the server is slow to recover.
func TestClientBreakerSurvivesTimedOutProbe(t *testing.T) {
	var stage atomic.Int64 // 0: fail fast, 1: stall, 2: healthy
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch stage.Load() {
		case 0:
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"boom","code":"internal"}`))
		case 1:
			<-stall // slower than the client's deadline
		default:
			w.Write([]byte(`{}`))
		}
	}))
	defer ts.Close()
	defer close(stall) // LIFO: unblock the stalled handler before Close waits on it

	clock := time.Unix(1000, 0)
	opts := testOptions(&instantSleep{})
	opts.MaxRetries = -1 // one attempt per call
	opts.Deadline = 100 * time.Millisecond
	opts.Breaker = resilience.BreakerConfig{
		Threshold: 1, Cooldown: time.Second,
		Now: func() time.Time { return clock },
	}
	c := New(ts.URL, opts)
	ctx := context.Background()

	if _, err := c.Analyze(ctx, analyzeReq(t)); err == nil {
		t.Fatal("want failure from a 500ing server")
	}
	if c.BreakerState() != resilience.BreakerOpen {
		t.Fatalf("state = %v, want open", c.BreakerState())
	}

	// Past the cooldown, the half-open probe hits a server that is up
	// but slower than our deadline: the attempt ends in
	// context.DeadlineExceeded, which proves nothing about its health.
	stage.Store(1)
	clock = clock.Add(time.Second + time.Millisecond)
	if _, err := c.Analyze(ctx, analyzeReq(t)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("probe err = %v, want deadline exceeded", err)
	}

	// The probe slot must have been released: once the server speeds
	// back up, the next call probes and closes the breaker instead of
	// failing locally with ErrBreakerOpen forever.
	stage.Store(2)
	body, err := c.Analyze(ctx, analyzeReq(t))
	if err != nil {
		t.Fatalf("post-timeout probe: %v (breaker wedged %v)", err, c.BreakerState())
	}
	if string(body) != "{}" {
		t.Errorf("body = %s", body)
	}
	if c.BreakerState() != resilience.BreakerClosed {
		t.Errorf("state = %v, want closed", c.BreakerState())
	}
}

func TestClientHedgedRequestReturnsFasterDuplicate(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// The primary stalls until the test ends.
			<-release
			w.Write([]byte(`{"who":"slow"}`))
			return
		}
		w.Write([]byte(`{"who":"fast"}`))
	}))
	defer ts.Close()
	defer close(release)

	opts := testOptions(nil)
	opts.Hedge = 10 * time.Millisecond
	c := New(ts.URL, opts)
	start := time.Now()
	body, err := c.Analyze(context.Background(), analyzeReq(t))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !strings.Contains(string(body), "fast") {
		t.Errorf("body = %s, want the hedged response", body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("hedged call took %v — duplicate did not rescue the stalled primary", elapsed)
	}
	if got := c.Counters(); got.Hedges != 1 {
		t.Errorf("counters = %+v, want 1 hedge", got)
	}
}

func TestClientSendsIdentityAndDeadlineHeaders(t *testing.T) {
	var gotClient, gotDeadline atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotClient.Store(r.Header.Get("X-Ringsched-Client"))
		gotDeadline.Store(r.Header.Get("X-Ringsched-Deadline-Ms"))
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	opts := testOptions(nil)
	opts.ClientID = "loadgen-7"
	opts.Deadline = 750 * time.Millisecond
	c := New(ts.URL, opts)
	if _, err := c.Analyze(context.Background(), analyzeReq(t)); err != nil {
		t.Fatal(err)
	}
	if gotClient.Load() != "loadgen-7" {
		t.Errorf("X-Ringsched-Client = %q", gotClient.Load())
	}
	ms, ok := gotDeadline.Load().(string)
	if !ok || ms == "" {
		t.Fatalf("X-Ringsched-Deadline-Ms missing")
	}
	if n, err := time.ParseDuration(ms + "ms"); err != nil || n <= 0 || n > 750*time.Millisecond {
		t.Errorf("X-Ringsched-Deadline-Ms = %q, want (0, 750]", ms)
	}
}
