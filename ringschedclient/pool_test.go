package ringschedclient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"ringsched/internal/trace"
)

func TestClientStaticAndPerCallHeaders(t *testing.T) {
	var hop, tenant atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hop.Store(r.Header.Get("X-Ringsched-Peer-Hop"))
		tenant.Store(r.Header.Get("X-Ringsched-Client"))
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	opts := testOptions(nil)
	opts.Headers = map[string]string{"X-Ringsched-Peer-Hop": "1"}
	c := New(ts.URL, opts)
	extra := http.Header{}
	extra.Set("X-Ringsched-Client", "tenant-3")
	if _, _, err := c.CallHeader(context.Background(), http.MethodGet, "/healthz", nil, extra); err != nil {
		t.Fatal(err)
	}
	if hop.Load() != "1" {
		t.Errorf("static header not sent: hop = %q", hop.Load())
	}
	if tenant.Load() != "tenant-3" {
		t.Errorf("per-call header not sent: client = %q", tenant.Load())
	}
}

func TestClientPropagatesTraceFromContext(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-Ringsched-Trace"))
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c := New(ts.URL, testOptions(nil))
	// No span in context → no trace header invented.
	if _, err := c.Call(context.Background(), http.MethodGet, "/healthz", nil); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "" {
		t.Errorf("trace header sent without a span: %q", got.Load())
	}

	ring := trace.NewRing(8)
	ctx := trace.WithTracer(context.Background(), trace.New(ring))
	ctx, sp := trace.StartRoot(ctx, "test.call", trace.TraceID{})
	defer sp.End()
	if _, err := c.Call(ctx, http.MethodGet, "/healthz", nil); err != nil {
		t.Fatal(err)
	}
	if got.Load() != sp.TraceID().String() {
		t.Errorf("trace header = %q, want span's %q", got.Load(), sp.TraceID())
	}
}

func TestCallHeaderReturnsResponseHeaders(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Cache", "hit")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	c := New(ts.URL, testOptions(nil))
	body, hdr, err := c.CallHeader(context.Background(), http.MethodGet, "/x", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != `{"ok":true}` {
		t.Errorf("body = %s", body)
	}
	if hdr.Get("X-Cache") != "hit" {
		t.Errorf("X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}
}

func TestPoolPerBaseClientsAndRoundRobin(t *testing.T) {
	p := NewPool(testOptions(nil))
	a := p.Client("http://a:1")
	if p.Client("a:1") != a || p.Client("http://a:1/") != a {
		t.Error("equivalent base spellings must share one client (one breaker per backend)")
	}
	b := p.Client("b:1")
	if a == b {
		t.Error("distinct backends must get distinct clients")
	}
	bases := p.Bases()
	if len(bases) != 2 || bases[0] != "http://a:1" || bases[1] != "http://b:1" {
		t.Errorf("Bases() = %v", bases)
	}

	// Round-robin must visit every candidate.
	seen := map[*Client]int{}
	cands := []string{"a:1", "b:1", "c:1"}
	for i := 0; i < 6; i++ {
		seen[p.Pick(cands)]++
	}
	if len(seen) != 3 {
		t.Errorf("Pick visited %d of 3 candidates over 6 picks", len(seen))
	}
	for c, n := range seen {
		if n != 2 {
			t.Errorf("client %p picked %d times, want 2", c, n)
		}
	}
	if p.Pick(nil) != nil {
		t.Error("Pick(nil) must return nil")
	}
}
