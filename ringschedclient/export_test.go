package ringschedclient

import (
	"context"
	"time"
)

// SetSleepForTest replaces the retry sleep, letting the external
// integration tests (package ringschedclient_test, which can import
// internal/service without creating an import cycle) run retry loops
// instantly.
func SetSleepForTest(o *Options, fn func(context.Context, time.Duration) error) {
	o.sleep = fn
}
