package ringschedclient_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"

	"ringsched/internal/resilience"
	"ringsched/internal/service"
	"ringsched/ringschedclient"
)

func newRingServer(t *testing.T) *ringschedclient.Client {
	t.Helper()
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ringschedclient.New(ts.URL, integOptions())
}

func TestRingSessionLifecycle(t *testing.T) {
	c := newRingServer(t)
	ctx := context.Background()

	sess, state, err := c.CreateRing(ctx, ringschedclient.RingCreateRequest{
		BandwidthMbps: 16,
		Streams: []ringschedclient.RingStreamSpec{
			{Name: "gyro", PeriodMs: 10, LengthBits: 4096},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if state.Version != 1 || len(state.Streams) != 1 {
		t.Fatalf("created state %+v, want version 1 with one stream", state)
	}
	var verdicts []struct {
		Protocol    string `json:"protocol"`
		Schedulable bool   `json:"schedulable"`
	}
	if err := json.Unmarshal(state.Verdicts, &verdicts); err != nil {
		t.Fatalf("verdicts don't decode: %v", err)
	}
	if len(verdicts) != 3 {
		t.Fatalf("%d verdicts, want 3", len(verdicts))
	}

	edit, err := sess.AddStream(ctx, ringschedclient.RingStreamSpec{
		Name: "telemetry", PeriodMs: 50, LengthBits: 65536,
	})
	if err != nil {
		t.Fatal(err)
	}
	if edit.Version != 2 || edit.Op != "add" || !edit.Admitted() {
		t.Fatalf("add edit %+v, want admitted version 2", edit)
	}
	if sess.Version() != 2 {
		t.Fatalf("session version %d, want 2", sess.Version())
	}

	if _, err := sess.ModifyStream(ctx, edit.StreamID, ringschedclient.RingStreamSpec{
		Name: "telemetry", PeriodMs: 25, LengthBits: 65536,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RemoveStream(ctx, edit.StreamID); err != nil {
		t.Fatal(err)
	}
	if sess.Version() != 4 {
		t.Fatalf("session version %d after modify+remove, want 4", sess.Version())
	}

	// A second session opened by ID sees the same state.
	sess2, state2, err := c.OpenRing(ctx, sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	if state2.Version != 4 || len(state2.Streams) != 1 {
		t.Fatalf("reopened state %+v, want version 4 with one stream", state2)
	}
	_ = sess2

	if err := sess.Delete(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Refresh(ctx); err == nil {
		t.Fatal("refresh after delete succeeded, want not_found")
	} else {
		var ae *ringschedclient.APIError
		if !errors.As(err, &ae) || ae.Code != resilience.CodeNotFound {
			t.Fatalf("refresh after delete: %v, want APIError not_found", err)
		}
	}
}

// TestRingSessionConflictRebase pins the CAS loop: a session holding a
// stale version transparently rebases from the 409 body and lands its
// edit at the next version.
func TestRingSessionConflictRebase(t *testing.T) {
	c := newRingServer(t)
	ctx := context.Background()

	sessA, _, err := c.CreateRing(ctx, ringschedclient.RingCreateRequest{BandwidthMbps: 16})
	if err != nil {
		t.Fatal(err)
	}
	sessB, _, err := c.OpenRing(ctx, sessA.ID())
	if err != nil {
		t.Fatal(err)
	}
	// A edits first; B's tracked version (1) is now stale.
	if _, err := sessA.AddStream(ctx, ringschedclient.RingStreamSpec{PeriodMs: 10, LengthBits: 1024}); err != nil {
		t.Fatal(err)
	}
	edit, err := sessB.AddStream(ctx, ringschedclient.RingStreamSpec{PeriodMs: 20, LengthBits: 1024})
	if err != nil {
		t.Fatalf("stale session edit did not rebase: %v", err)
	}
	if edit.Version != 3 {
		t.Fatalf("rebased edit landed at version %d, want 3", edit.Version)
	}
}

// TestRingSessionConcurrentEditors hammers one ring from several
// sessions; the rebase loop must serialize them without losing edits.
func TestRingSessionConcurrentEditors(t *testing.T) {
	c := newRingServer(t)
	ctx := context.Background()

	lead, _, err := c.CreateRing(ctx, ringschedclient.RingCreateRequest{BandwidthMbps: 16})
	if err != nil {
		t.Fatal(err)
	}
	const editors, adds = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, editors)
	for e := 0; e < editors; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, _, err := c.OpenRing(ctx, lead.ID())
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < adds; i++ {
				// Under editors-way contention an edit can exhaust its
				// bounded rebases; retry it — the bound exists to surface
				// livelock to callers, and this caller's policy is to
				// keep admitting.
				for {
					_, err := sess.AddStream(ctx, ringschedclient.RingStreamSpec{PeriodMs: 100, LengthBits: 512})
					if err == nil {
						break
					}
					var ae *ringschedclient.APIError
					if errors.As(err, &ae) && ae.Code == resilience.CodeConflict {
						continue
					}
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	state, err := lead.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Streams) != editors*adds {
		t.Fatalf("%d streams landed, want %d", len(state.Streams), editors*adds)
	}
	if state.Version != uint64(1+editors*adds) {
		t.Fatalf("final version %d, want %d", state.Version, 1+editors*adds)
	}
}
