package ringschedclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"ringsched/internal/resilience"
)

// This file is the client side of the stateful /v1/rings API: a
// RingSession tracks one server-side ring and its version, applies
// optimistic-concurrency edits, and transparently rebases on CAS
// conflicts. The wire structs mirror the server's ring schema; like the
// rest of this package they are duplicated rather than imported, so the
// client stays decoupled from server internals.

// RingStreamSpec is one synchronous message stream on the wire.
type RingStreamSpec struct {
	Name       string  `json:"name,omitempty"`
	PeriodMs   float64 `json:"periodMs"`
	LengthBits float64 `json:"lengthBits"`
}

// RingCreateRequest creates a ring session; parameters are exactly
// /v1/analyze's, plus an optional seed stream set.
type RingCreateRequest struct {
	Protocols     []string         `json:"protocols,omitempty"`
	BandwidthMbps float64          `json:"bandwidthMbps"`
	FaultModel    string           `json:"faultModel,omitempty"`
	Scenario      string           `json:"scenario,omitempty"`
	Streams       []RingStreamSpec `json:"streams,omitempty"`
}

// RingStream is one resident stream with its server-assigned handle.
type RingStream struct {
	ID         string  `json:"id"`
	Name       string  `json:"name,omitempty"`
	PeriodMs   float64 `json:"periodMs"`
	LengthBits float64 `json:"lengthBits"`
}

// RingState is the ring's full state at one version. Verdicts is kept
// raw: its shape is /v1/analyze's verdict list, and callers that care
// decode exactly the fields they need.
type RingState struct {
	ID            string          `json:"id"`
	Version       uint64          `json:"version"`
	Protocols     []string        `json:"protocols"`
	BandwidthMbps float64         `json:"bandwidthMbps"`
	FaultModel    string          `json:"faultModel,omitempty"`
	SnapshotKey   string          `json:"snapshotKey,omitempty"`
	Streams       []RingStream    `json:"streams"`
	Verdicts      json.RawMessage `json:"verdicts"`
}

// RingStreamFlip names a stream whose verdict changed under an edit.
type RingStreamFlip struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	Schedulable bool   `json:"schedulable"`
}

// RingProtocolDelta is one protocol's incremental verdict delta.
type RingProtocolDelta struct {
	Protocol               string           `json:"protocol"`
	Reprobed               int              `json:"reprobed"`
	WasSchedulable         bool             `json:"wasSchedulable"`
	Schedulable            bool             `json:"schedulable"`
	DegradedWasSchedulable *bool            `json:"degradedWasSchedulable,omitempty"`
	DegradedSchedulable    *bool            `json:"degradedSchedulable,omitempty"`
	EditedSchedulable      *bool            `json:"editedSchedulable,omitempty"`
	Flipped                []RingStreamFlip `json:"flipped,omitempty"`
}

// RingEdit is one applied edit's outcome. A nil error from an edit call
// does NOT mean the stream is schedulable — read the deltas; an
// infeasible admission is a successful edit with a negative verdict.
type RingEdit struct {
	RingID   string              `json:"ringId"`
	Version  uint64              `json:"version"`
	Op       string              `json:"op"`
	StreamID string              `json:"streamId"`
	Reprobed int                 `json:"reprobed"`
	Deltas   []RingProtocolDelta `json:"deltas"`
}

// Admitted reports whether every protocol's edited-stream verdict came
// back schedulable (vacuously true for removes).
func (e *RingEdit) Admitted() bool {
	for _, d := range e.Deltas {
		if d.EditedSchedulable != nil && !*d.EditedSchedulable {
			return false
		}
	}
	return true
}

// ringConflictRetries bounds transparent CAS rebases per edit call:
// under heavy contention the caller gets the conflict back rather than
// an unbounded livelock loop.
const ringConflictRetries = 3

// RingSession tracks one server-side ring and its last-seen version,
// providing the optimistic-concurrency edit loop: every edit names the
// tracked version; on a 409 the session adopts the server's current
// version from the conflict body and replays the edit, bounded by
// ringConflictRetries. It is safe for concurrent use, but concurrent
// edits from one session contend on the server like any two writers.
type RingSession struct {
	c  *Client
	id string

	mu      sync.Mutex
	version uint64
}

// CreateRing creates a server-side ring and returns the session plus
// the initial state (version 1, seed streams analyzed).
func (c *Client) CreateRing(ctx context.Context, req RingCreateRequest) (*RingSession, *RingState, error) {
	raw, err := c.Call(ctx, http.MethodPost, "/v1/rings", req)
	if err != nil {
		return nil, nil, err
	}
	var state RingState
	if err := json.Unmarshal(raw, &state); err != nil {
		return nil, nil, fmt.Errorf("ringschedclient: decode ring state: %w", err)
	}
	return &RingSession{c: c, id: state.ID, version: state.Version}, &state, nil
}

// OpenRing attaches a session to an existing ring by ID.
func (c *Client) OpenRing(ctx context.Context, id string) (*RingSession, *RingState, error) {
	s := &RingSession{c: c, id: id}
	state, err := s.Refresh(ctx)
	if err != nil {
		return nil, nil, err
	}
	return s, state, nil
}

// ID returns the server-side ring ID.
func (s *RingSession) ID() string { return s.id }

// Version returns the last version this session observed.
func (s *RingSession) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// observe adopts a version the server reported.
func (s *RingSession) observe(v uint64) {
	s.mu.Lock()
	if v > s.version {
		s.version = v
	}
	s.mu.Unlock()
}

// Refresh fetches the ring's current state and adopts its version.
func (s *RingSession) Refresh(ctx context.Context) (*RingState, error) {
	raw, err := s.c.Call(ctx, http.MethodGet, "/v1/rings/"+url.PathEscape(s.id), nil)
	if err != nil {
		return nil, err
	}
	var state RingState
	if err := json.Unmarshal(raw, &state); err != nil {
		return nil, fmt.Errorf("ringschedclient: decode ring state: %w", err)
	}
	s.observe(state.Version)
	return &state, nil
}

// Delete deletes the ring unconditionally and invalidates the session.
func (s *RingSession) Delete(ctx context.Context) error {
	_, err := s.c.Call(ctx, http.MethodDelete, "/v1/rings/"+url.PathEscape(s.id), nil)
	return err
}

// AddStream admits one stream through the CAS edit loop.
func (s *RingSession) AddStream(ctx context.Context, spec RingStreamSpec) (*RingEdit, error) {
	return s.edit(ctx, func(expected uint64) (json.RawMessage, error) {
		body := struct {
			ExpectedVersion uint64         `json:"expectedVersion,omitempty"`
			Stream          RingStreamSpec `json:"stream"`
		}{expected, spec}
		return s.c.Call(ctx, http.MethodPost, "/v1/rings/"+url.PathEscape(s.id)+"/streams", body)
	})
}

// ModifyStream replaces the named stream's parameters.
func (s *RingSession) ModifyStream(ctx context.Context, streamID string, spec RingStreamSpec) (*RingEdit, error) {
	return s.edit(ctx, func(expected uint64) (json.RawMessage, error) {
		body := struct {
			ExpectedVersion uint64         `json:"expectedVersion,omitempty"`
			Stream          RingStreamSpec `json:"stream"`
		}{expected, spec}
		return s.c.Call(ctx, http.MethodPut,
			"/v1/rings/"+url.PathEscape(s.id)+"/streams/"+url.PathEscape(streamID), body)
	})
}

// RemoveStream removes the named stream.
func (s *RingSession) RemoveStream(ctx context.Context, streamID string) (*RingEdit, error) {
	return s.edit(ctx, func(expected uint64) (json.RawMessage, error) {
		path := "/v1/rings/" + url.PathEscape(s.id) + "/streams/" + url.PathEscape(streamID) +
			"?expectedVersion=" + strconv.FormatUint(expected, 10)
		return s.c.Call(ctx, http.MethodDelete, path, nil)
	})
}

// edit runs one mutation through the conflict-rebase loop. Rebasing is
// safe precisely because every edit is CAS-guarded: a replay can never
// double-apply — if the previous attempt actually landed, the version
// has moved and the replay conflicts instead of duplicating.
func (s *RingSession) edit(ctx context.Context, do func(expected uint64) (json.RawMessage, error)) (*RingEdit, error) {
	expected := s.Version()
	var lastErr error
	for attempt := 0; attempt <= ringConflictRetries; attempt++ {
		raw, err := do(expected)
		if err == nil {
			var edit RingEdit
			if err := json.Unmarshal(raw, &edit); err != nil {
				return nil, fmt.Errorf("ringschedclient: decode ring edit: %w", err)
			}
			s.observe(edit.Version)
			return &edit, nil
		}
		lastErr = err
		ae := apiErrorOf(err)
		if ae == nil || ae.Code != resilience.CodeConflict || ae.CurrentVersion == 0 {
			return nil, err
		}
		expected = ae.CurrentVersion
		s.observe(expected)
	}
	return nil, fmt.Errorf("ringschedclient: edit still conflicting after %d rebases: %w",
		ringConflictRetries, lastErr)
}

// RingHistoryRecord is one entry in a ring's audit trail.
type RingHistoryRecord struct {
	Seq           uint64          `json:"seq"`
	VersionBefore uint64          `json:"versionBefore"`
	Version       uint64          `json:"version"`
	Op            string          `json:"op"`
	StreamID      uint64          `json:"streamId,omitempty"`
	Stream        *RingStreamSpec `json:"stream,omitempty"`
	Reprobed      int             `json:"reprobed"`
	Time          time.Time       `json:"time"`
	TraceID       string          `json:"traceId,omitempty"`
	Client        string          `json:"client,omitempty"`
}

// RingHistory is the server's audit trail for one ring: the retained
// mutation records plus how many older records were compacted into the
// baseline.
type RingHistory struct {
	RingID    string              `json:"ringId"`
	Version   uint64              `json:"version"`
	Records   []RingHistoryRecord `json:"records"`
	Compacted uint64              `json:"compacted"`
}

// History fetches the ring's audit trail as structured records.
func (s *RingSession) History(ctx context.Context) (*RingHistory, error) {
	raw, err := s.c.Call(ctx, http.MethodGet, "/v1/rings/"+url.PathEscape(s.id)+"/history", nil)
	if err != nil {
		return nil, err
	}
	var h RingHistory
	if err := json.Unmarshal(raw, &h); err != nil {
		return nil, fmt.Errorf("ringschedclient: decode ring history: %w", err)
	}
	s.observe(h.Version)
	return &h, nil
}

// HistoryScript fetches the audit trail in the ringadmit script
// serialization — the replayable WAL form — as plain text.
func (s *RingSession) HistoryScript(ctx context.Context) (string, error) {
	raw, err := s.c.Call(ctx, http.MethodGet,
		"/v1/rings/"+url.PathEscape(s.id)+"/history?format=script", nil)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}
